//! Implementations of every table and figure of the paper's evaluation.
//!
//! Each function returns plain data structures; the binaries in `src/bin/`
//! print them. Reduced-size variants (`small = true`) run the same code on
//! smaller inputs so the whole suite stays test-friendly.

use spice_core::backend::{make_backend_with, BackendChoice, SimBackend};
use spice_core::baseline::{render_schedule, LoopTimingModel, ScheduleKind};
use spice_core::pipeline::{predictor_options_with_estimate, run_sequential};
use spice_core::predictor::PredictorOptions;
use spice_core::valuepred::{
    evaluate_predictor, LastValuePredictor, SpiceMemoPredictor, StridePredictor,
};
use spice_ir::interp::LocalSys;
use spice_profiler::{
    measure_cycle_hotness, measure_hotness, profile_workload, AnalyzerConfig, PredictabilityBin,
};
use spice_sim::{Machine, MachineConfig};
use spice_workloads::{
    fig8_corpus, run_workload_on, BackendRunSummary, KsConfig, KsWorkload, McfConfig, McfWorkload,
    OtterConfig, OtterWorkload, SjengConfig, SjengWorkload, SpiceWorkload, Suite,
};

/// Factory for a fresh instance of one of the paper's four benchmark loops.
type WorkloadFactory = Box<dyn Fn() -> Box<dyn SpiceWorkload>>;

/// Returns `(name, factory)` pairs for the Table 2 / Figure 7 benchmarks.
///
/// The full-size configurations are chosen so the traversed data structures
/// do not fit in the private caches of the Table 1 machine — the regime the
/// paper's loops run in, where the pointer-chasing load dominates each
/// iteration — while the `small` configurations keep unit tests fast.
#[must_use]
pub fn paper_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    // Working-set sizes (full): ks 6000×3 words ≈ 144 KB, otter 8000×2 ≈
    // 128 KB, mcf 6000×6 ≈ 288 KB — all at or past the 256 KB L2.
    let (ks_modules, otter_len, mcf_nodes, sjeng_pieces) = if small {
        (150usize, 130usize, 160usize, 24usize)
    } else {
        (6_000, 8_000, 6_000, 64)
    };
    let invocations = if small { 10 } else { 14 };
    let sjeng_invocations = if small { 20 } else { 60 };
    vec![
        (
            "ks",
            Box::new(move || {
                Box::new(KsWorkload::new(KsConfig {
                    modules: ks_modules,
                    invocations,
                    d_updates_per_invocation: 8,
                    seed: 0x6b73,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
        (
            "otter",
            Box::new(move || {
                Box::new(OtterWorkload::new(OtterConfig {
                    initial_len: otter_len,
                    inserts_per_invocation: 3,
                    invocations,
                    seed: 0x07734,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
        (
            "181.mcf",
            Box::new(move || {
                Box::new(McfWorkload::new(McfConfig {
                    nodes: mcf_nodes,
                    invocations,
                    cost_updates_per_invocation: 12,
                    reparents_per_invocation: 2,
                    seed: 0x6d6366,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
        (
            "458.sjeng",
            Box::new(move || {
                Box::new(SjengWorkload::new(SjengConfig {
                    pieces: sjeng_pieces,
                    invocations: sjeng_invocations,
                    mutate_probability: if small { 0.30 } else { 0.12 },
                    seed: 0x736a,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
    ]
}

/// Returns `(name, factory)` pairs for the conflict-carrying workloads the
/// memory-dependence speculation subsystem unlocks: the faithful
/// `mcf_refresh_potential_true` kernel and the adversarial `list_splice`
/// loop. The instances come straight from the suite registry
/// (`spice_workloads::conflict_benchmarks{,_small}`) so the bench harness and
/// every other consumer measure one canonical configuration. They run
/// through the same tables and cross-checks as the paper loops; their value
/// is correctness under squash-and-recover, not speedup (the faithful mcf
/// chain violates nearly every chunk boundary).
#[must_use]
pub fn conflict_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    let registry = move || {
        if small {
            spice_workloads::conflict_benchmarks_small()
        } else {
            spice_workloads::conflict_benchmarks()
        }
    };
    registry()
        .into_iter()
        .enumerate()
        .map(|(i, wl)| {
            let factory: WorkloadFactory = Box::new(move || registry().swap_remove(i));
            (wl.name(), factory)
        })
        .collect()
}

/// Returns `(name, factory)` pairs for the miniature-application workloads
/// (`spice_workloads::app_benchmarks{,_small}`): whole programs whose serial
/// pivot phases execute as measured IR around the Spice target loop, so
/// Table 2's hotness for them is profiler-measured. Like the conflict pair,
/// their fig7 rows document recovery cost (the faithful refresh chain plus
/// the serial phases' write traffic squash most chunks), not speedup.
#[must_use]
pub fn app_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    let registry = move || {
        if small {
            spice_workloads::app_benchmarks_small()
        } else {
            spice_workloads::app_benchmarks()
        }
    };
    registry()
        .into_iter()
        .enumerate()
        .map(|(i, wl)| {
            let factory: WorkloadFactory = Box::new(move || registry().swap_remove(i));
            (wl.name(), factory)
        })
        .collect()
}

/// The paper's four loops, the conflict-carrying pair and the miniature
/// applications — the set every table, figure and cross-check now covers.
#[must_use]
pub fn all_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    let mut v = paper_workload_factories(small);
    v.extend(conflict_workload_factories(small));
    v.extend(app_workload_factories(small));
    v
}

/// Total sequential cycles over all invocations of a workload.
///
/// # Errors
///
/// Returns a description of any simulation failure.
pub fn run_workload_sequential(workload: &mut dyn SpiceWorkload) -> Result<u64, String> {
    let built = workload.build();
    let config = MachineConfig::itanium2_cmp().with_cores(1);
    let mut machine = Machine::new(config, built.program);
    let mut args = workload.init(machine.mem_mut());
    let mut total = 0u64;
    let mut inv = 0usize;
    loop {
        let expected = workload.expected_result(machine.mem());
        let (cycles, ret) =
            run_sequential(&mut machine, built.kernel, &args).map_err(|e| e.to_string())?;
        if let Some(e) = expected {
            if ret != Some(e) {
                return Err(format!(
                    "{}: sequential run returned {ret:?}, expected {e}",
                    workload.name()
                ));
            }
        }
        total += cycles;
        match workload.next_invocation(machine.mem_mut(), inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    Ok(total)
}

/// Result of running a workload under Spice.
#[derive(Debug, Clone)]
pub struct SpiceRunResult {
    /// Total simulated cycles over all invocations.
    pub cycles: u64,
    /// Fraction of invocations with at least one squashed worker.
    pub misspeculation_rate: f64,
    /// Mean coefficient of variation of per-core work.
    pub load_imbalance: f64,
    /// Number of invocations executed.
    pub invocations: usize,
    /// Chunks squashed by the conflict-detection subsystem (cross-chunk RAW
    /// violations), summed over invocations.
    pub dependence_violations: usize,
}

/// Runs a workload under the Spice transformation with `threads` threads on
/// the cycle-accurate simulator — the Table 1 instantiation of
/// [`run_workload_backend`].
///
/// # Errors
///
/// Returns a description of any analysis, transformation or simulation
/// failure, including result mismatches against the host-computed expectation.
pub fn run_workload_spice(
    workload: &mut dyn SpiceWorkload,
    threads: usize,
    predictor: PredictorOptions,
) -> Result<SpiceRunResult, String> {
    let mut backend = SimBackend::new(threads).with_predictor(predictor);
    let summary = run_workload_on(workload, &mut backend)?;
    Ok(SpiceRunResult {
        cycles: u64::try_from(summary.total_cost).unwrap_or(u64::MAX),
        misspeculation_rate: summary.misspeculation_rate(),
        load_imbalance: summary.load_imbalance(),
        invocations: summary.invocations,
        dependence_violations: summary.dependence_violations,
    })
}

/// Runs a workload on any execution backend, selected by value — the
/// harness-side entry into the shared execution layer.
///
/// # Errors
///
/// Returns a description of the first failure or result mismatch.
pub fn run_workload_backend(
    workload: &mut dyn SpiceWorkload,
    choice: BackendChoice,
    threads: usize,
    predictor: PredictorOptions,
) -> Result<BackendRunSummary, String> {
    let mut backend = make_backend_with(choice, threads, predictor);
    run_workload_on(workload, backend.as_mut())
}

/// One row of the backend cross-check: the same workload driven over the
/// timing simulator and the native-thread runtime through the same call
/// site, with the per-invocation results compared.
#[derive(Debug, Clone)]
pub struct CrosscheckRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Thread count used on both backends.
    pub threads: usize,
    /// Simulator-side run.
    pub sim: BackendRunSummary,
    /// Native-thread run.
    pub native: BackendRunSummary,
    /// Whether every invocation returned the same value on both backends.
    pub agree: bool,
}

/// Cross-checks the paper's four benchmark loops *and* the conflict-carrying
/// pair between the simulator and the native-thread backend: every
/// invocation of every workload must compute the same result on both
/// substrates — for the conflict workloads that only holds because both
/// backends' dependence-violation squashes recover correctly.
///
/// # Errors
///
/// Returns the first execution failure on either backend.
pub fn crosscheck(threads: usize) -> Result<Vec<CrosscheckRow>, String> {
    let mut rows = Vec::new();
    for (name, factory) in all_workload_factories(true) {
        let mut sim_wl = factory();
        let sim = run_workload_backend(
            sim_wl.as_mut(),
            BackendChoice::SimTiny,
            threads,
            PredictorOptions::default(),
        )?;
        let mut native_wl = factory();
        let native = run_workload_backend(
            native_wl.as_mut(),
            BackendChoice::Native,
            threads,
            PredictorOptions::default(),
        )?;
        let agree = sim.return_values == native.return_values;
        rows.push(CrosscheckRow {
            benchmark: name.to_string(),
            threads,
            sim,
            native,
            agree,
        });
    }
    Ok(rows)
}

/// One row of the Figure 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Thread count.
    pub threads: usize,
    /// Total sequential cycles.
    pub sequential_cycles: u64,
    /// Total Spice cycles.
    pub spice_cycles: u64,
    /// Loop speedup (sequential / Spice).
    pub speedup: f64,
    /// Mis-speculation rate over invocations.
    pub misspeculation_rate: f64,
    /// Load-imbalance metric (coefficient of variation of per-core work).
    pub load_imbalance: f64,
    /// Dependence-violation squashes taken and recovered (nonzero only for
    /// the conflict-carrying workloads).
    pub dependence_violations: usize,
}

/// Reproduces Figure 7: loop speedups of the four benchmarks — plus the
/// conflict-carrying pair, whose rows document the *cost* of dependence
/// recovery rather than a speedup — with 2 and 4 threads, and the per-loop
/// diagnostics discussed in §5.
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn fig7(small: bool) -> Result<Vec<Fig7Row>, String> {
    let mut rows = Vec::new();
    for (name, factory) in all_workload_factories(small) {
        let mut seq_wl = factory();
        let sequential_cycles = run_workload_sequential(seq_wl.as_mut())?;
        for &threads in &[2usize, 4] {
            let mut wl = factory();
            let estimate = wl.expected_iterations();
            let result = run_workload_spice(
                wl.as_mut(),
                threads,
                predictor_options_with_estimate(estimate),
            )?;
            rows.push(Fig7Row {
                benchmark: name.to_string(),
                threads,
                sequential_cycles,
                spice_cycles: result.cycles,
                speedup: sequential_cycles as f64 / result.cycles as f64,
                misspeculation_rate: result.misspeculation_rate,
                load_imbalance: result.load_imbalance,
                dependence_violations: result.dependence_violations,
            });
        }
    }
    Ok(rows)
}

/// The four benchmarks of the paper's Figure 7 (the conflict-carrying extras
/// are excluded from the figure's headline geomean, which reproduces the
/// paper's number).
pub const FIG7_PAPER_BENCHMARKS: [&str; 4] = ["ks", "otter", "181.mcf", "458.sjeng"];

/// Geometric mean of the speedups of the *paper* Figure 7 rows with the
/// given thread count.
#[must_use]
pub fn fig7_geomean(rows: &[Fig7Row], threads: usize) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| r.threads == threads && FIG7_PAPER_BENCHMARKS.contains(&r.benchmark.as_str()))
        .map(|r| r.speedup)
        .collect();
    spice_sim::geomean(&v)
}

/// Renders Figure 7 rows as the `BENCH_fig7.json` document: workload names
/// escaped and every float finite-checked through [`crate::json`], so an
/// empty or degenerate run yields `null` metrics instead of an unparseable
/// artifact.
#[must_use]
pub fn fig7_json(rows: &[Fig7Row], small: bool) -> String {
    use std::fmt::Write as _;

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"figure\": \"fig7\",");
    let _ = writeln!(s, "  \"small\": {small},");
    let _ = writeln!(
        s,
        "  \"geomean_speedup_2t\": {},",
        crate::json::float(fig7_geomean(rows, 2))
    );
    let _ = writeln!(
        s,
        "  \"geomean_speedup_4t\": {},",
        crate::json::float(fig7_geomean(rows, 4))
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"benchmark\": {}, \"threads\": {}, \"sequential_cycles\": {}, \
             \"spice_cycles\": {}, \"speedup\": {}, \"misspeculation_rate\": {}, \
             \"load_imbalance\": {}, \"dependence_violations\": {}}}{comma}",
            crate::json::string(&r.benchmark),
            r.threads,
            r.sequential_cycles,
            r.spice_cycles,
            crate::json::float(r.speedup),
            crate::json::float(r.misspeculation_rate),
            crate::json::float(r.load_imbalance),
            r.dependence_violations
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders Figure 7 rows as a text table.
#[must_use]
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 7 — loop speedup over single-threaded execution\n");
    s.push_str(
        "benchmark    threads  seq cycles     spice cycles   speedup  misspec  imbalance  raw-squash\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>7}  {:>12}  {:>13}  {:>6.2}x  {:>6.1}%  {:>8.3}  {:>9}\n",
            r.benchmark,
            r.threads,
            r.sequential_cycles,
            r.spice_cycles,
            r.speedup,
            r.misspeculation_rate * 100.0,
            r.load_imbalance,
            r.dependence_violations
        ));
    }
    s.push_str(&format!(
        "GeoMean over the paper loops (2 threads): {:.2}x   (4 threads): {:.2}x\n",
        fig7_geomean(rows, 2),
        fig7_geomean(rows, 4)
    ));
    s
}

/// Reproduces Table 1: the machine model.
#[must_use]
pub fn table1() -> Vec<(String, String)> {
    MachineConfig::itanium2_cmp().table1_rows()
}

/// One timed harness run: a workload in one execution mode, with the host
/// time it took and the simulated cycles it covered.
#[derive(Debug, Clone)]
pub struct HarnessPerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `"sequential"`, or `"spiceN"` for an N-thread Spice run.
    pub mode: String,
    /// Total simulated cycles of the run.
    pub simulated_cycles: u64,
    /// Host wall-clock nanoseconds the run took (workload build, transform
    /// and simulation — everything a bench invocation waits for).
    pub host_nanos: u128,
}

impl HarnessPerfRow {
    /// Host nanoseconds per simulated cycle — the harness-speed metric the
    /// perf-smoke trajectory tracks.
    #[must_use]
    pub fn ns_per_cycle(&self) -> f64 {
        if self.simulated_cycles == 0 {
            f64::NAN
        } else {
            self.host_nanos as f64 / self.simulated_cycles as f64
        }
    }
}

/// Measures harness speed over the Figure 7 suite: every workload runs
/// sequentially and under Spice (2 and 4 threads) with host wall-clock and
/// simulated-cycle totals recorded per run. This is the same work `fig7`
/// performs — the *simulated* numbers are identical by construction — but
/// the deliverable is host seconds, so harness-speed regressions become
/// visible trajectory data in `BENCH_harness.json`.
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn harnessperf(small: bool) -> Result<Vec<HarnessPerfRow>, String> {
    let mut rows = Vec::new();
    for (name, factory) in all_workload_factories(small) {
        let started = std::time::Instant::now();
        let mut seq_wl = factory();
        let sequential_cycles = run_workload_sequential(seq_wl.as_mut())?;
        rows.push(HarnessPerfRow {
            benchmark: name.to_string(),
            mode: "sequential".to_string(),
            simulated_cycles: sequential_cycles,
            host_nanos: started.elapsed().as_nanos(),
        });
        for &threads in &[2usize, 4] {
            let started = std::time::Instant::now();
            let mut wl = factory();
            let estimate = wl.expected_iterations();
            let result = run_workload_spice(
                wl.as_mut(),
                threads,
                predictor_options_with_estimate(estimate),
            )?;
            rows.push(HarnessPerfRow {
                benchmark: name.to_string(),
                mode: format!("spice{threads}"),
                simulated_cycles: result.cycles,
                host_nanos: started.elapsed().as_nanos(),
            });
        }
    }
    Ok(rows)
}

/// Total host seconds of a harness-perf run.
#[must_use]
pub fn harness_total_seconds(rows: &[HarnessPerfRow]) -> f64 {
    rows.iter().map(|r| r.host_nanos as f64 / 1e9).sum()
}

/// Overall host-ns-per-simulated-cycle of a harness-perf run.
#[must_use]
pub fn harness_ns_per_cycle(rows: &[HarnessPerfRow]) -> f64 {
    let cycles: u64 = rows.iter().map(|r| r.simulated_cycles).sum();
    let nanos: u128 = rows.iter().map(|r| r.host_nanos).sum();
    if cycles == 0 {
        f64::NAN
    } else {
        nanos as f64 / cycles as f64
    }
}

/// The pre-PR harness speed, measured with this same `harnessperf` binary
/// compiled against the tree as of commit `b8fd225` (the last commit before
/// the event-driven core and pre-decoded dispatch landed), on the same host,
/// full-size suite. Kept here so the committed `BENCH_harness.json` shows
/// the before/after pair that motivated the rework; update it only when the
/// baseline is deliberately re-measured.
pub const PRE_PR_TOTAL_HOST_SECONDS: f64 = 1.727;
/// See [`PRE_PR_TOTAL_HOST_SECONDS`].
pub const PRE_PR_NS_PER_CYCLE: f64 = 85.3;

/// Renders harness-perf rows as the `BENCH_harness.json` document through
/// [`crate::json`] (names escaped, non-finite metrics → `null`).
#[must_use]
pub fn harnessperf_json(rows: &[HarnessPerfRow], small: bool) -> String {
    use std::fmt::Write as _;

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"figure\": \"harness\",");
    let _ = writeln!(s, "  \"small\": {small},");
    let _ = writeln!(
        s,
        "  \"pre_pr_total_host_seconds\": {},",
        crate::json::float(PRE_PR_TOTAL_HOST_SECONDS)
    );
    let _ = writeln!(
        s,
        "  \"pre_pr_ns_per_simulated_cycle\": {},",
        crate::json::float(PRE_PR_NS_PER_CYCLE)
    );
    let _ = writeln!(
        s,
        "  \"speedup_vs_pre_pr\": {},",
        crate::json::float(PRE_PR_NS_PER_CYCLE / harness_ns_per_cycle(rows))
    );
    let _ = writeln!(
        s,
        "  \"total_host_seconds\": {},",
        crate::json::float(harness_total_seconds(rows))
    );
    let _ = writeln!(
        s,
        "  \"total_simulated_cycles\": {},",
        rows.iter().map(|r| r.simulated_cycles).sum::<u64>()
    );
    let _ = writeln!(
        s,
        "  \"ns_per_simulated_cycle\": {},",
        crate::json::float(harness_ns_per_cycle(rows))
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"benchmark\": {}, \"mode\": {}, \"simulated_cycles\": {}, \
             \"host_nanos\": {}, \"ns_per_cycle\": {}}}{comma}",
            crate::json::string(&r.benchmark),
            crate::json::string(&r.mode),
            r.simulated_cycles,
            r.host_nanos,
            crate::json::float(r.ns_per_cycle())
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders harness-perf rows as a text table.
#[must_use]
pub fn format_harnessperf(rows: &[HarnessPerfRow]) -> String {
    let mut s = String::new();
    s.push_str("Harness performance — host cost per simulated cycle\n");
    s.push_str("benchmark    mode        sim cycles      host ms   ns/cycle\n");
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:<10} {:>12}  {:>9.2}  {:>9.1}\n",
            r.benchmark,
            r.mode,
            r.simulated_cycles,
            r.host_nanos as f64 / 1e6,
            r.ns_per_cycle()
        ));
    }
    s.push_str(&format!(
        "TOTAL: {:.3} host seconds, {:.1} ns per simulated cycle\n",
        harness_total_seconds(rows),
        harness_ns_per_cycle(rows)
    ));
    s.push_str(&format!(
        "vs pre-PR baseline ({PRE_PR_NS_PER_CYCLE:.1} ns/cycle, \
         {PRE_PR_TOTAL_HOST_SECONDS:.3} s full-size): {:.2}x\n",
        PRE_PR_NS_PER_CYCLE / harness_ns_per_cycle(rows)
    ));
    s
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Benchmark description.
    pub description: String,
    /// Parallelized loop.
    pub loop_name: String,
    /// Hotness reported by the paper — a *comparison* column: the measured
    /// value next to it is what the reproduction actually exhibits.
    pub paper_hotness: f64,
    /// Whole-program hotness measured by profiler cycle attribution: the
    /// target loop's share of all simulated cycles of the full run (serial
    /// phases and helper functions included). For kernels under synthetic
    /// drivers this is close to 1 — itself a faithful statement that those
    /// drivers are not yet applications; for `mcf_app` the program around
    /// the loop is real and the number is the application's.
    pub measured_hotness: f64,
    /// Dynamic instructions per invocation of the loop, measured here.
    pub measured_loop_instructions: u64,
    /// Loop hotness within the kernel function (loop instructions over all
    /// instructions of the kernel run).
    pub measured_kernel_fraction: f64,
}

/// Reproduces Table 2: benchmark details. The `paper_hotness` column quotes
/// the paper for comparison; `measured_hotness` comes from profiler cycle
/// attribution over the whole program
/// ([`spice_profiler::measure_cycle_hotness`] on a one-core machine — the
/// reduced test machine for `small`, the Table 1 machine otherwise).
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn table2(small: bool) -> Result<Vec<Table2Row>, String> {
    let mut rows = Vec::new();
    for (_, factory) in all_workload_factories(small) {
        let mut wl = factory();
        let built = wl.build();
        let mut mem = spice_ir::interp::FlatMemory::for_program(&built.program, 1 << 22);
        let args = wl.init(&mut mem);
        let mut sys = LocalSys::new();
        let report = measure_hotness(
            &built.program,
            built.kernel,
            built.loop_header_hint,
            &args,
            &mut mem,
            &mut sys,
        )
        .map_err(|e| e.to_string())?;
        let config = if small {
            MachineConfig::test_tiny(1)
        } else {
            MachineConfig::itanium2_cmp()
        };
        let mut cycle_wl = factory();
        let cycles = measure_cycle_hotness(cycle_wl.as_mut(), config)?;
        rows.push(Table2Row {
            benchmark: wl.name().to_string(),
            description: wl.description().to_string(),
            loop_name: wl.loop_name().to_string(),
            paper_hotness: wl.paper_hotness(),
            measured_hotness: cycles.fraction(),
            measured_loop_instructions: report.loop_instructions,
            measured_kernel_fraction: report.fraction(),
        });
    }
    Ok(rows)
}

/// One benchmark's bar of the Figure 8 reproduction.
#[derive(Debug, Clone)]
pub struct Fig8Bar {
    /// Benchmark name.
    pub benchmark: String,
    /// Which panel it belongs to.
    pub suite: Suite,
    /// Percentage of profiled loops in each bin
    /// `(low, average, good, high)`; loops with no predictable invocation are
    /// omitted, as in the paper ("missing bars").
    pub percent: (f64, f64, f64, f64),
    /// Number of loops profiled.
    pub loops: usize,
}

/// Reproduces Figure 8 over the synthetic corpus.
///
/// # Errors
///
/// Returns the first profiling failure encountered.
pub fn fig8(small: bool) -> Result<Vec<Fig8Bar>, String> {
    let invocations = if small { 8 } else { 16 };
    let list_len = if small { 24 } else { 64 };
    let mut bars = Vec::new();
    for bench in fig8_corpus() {
        let mut counts = [0usize; 4]; // low, average, good, high
        let mut loops = 0usize;
        for mut wl in bench.workloads(invocations, list_len) {
            let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None)
                .map_err(|e| format!("{}: {e}", bench.name))?;
            for v in verdicts {
                loops += 1;
                match v.bin {
                    PredictabilityBin::Low => counts[0] += 1,
                    PredictabilityBin::Average => counts[1] += 1,
                    PredictabilityBin::Good => counts[2] += 1,
                    PredictabilityBin::High => counts[3] += 1,
                    PredictabilityBin::None => {}
                }
            }
        }
        let denom = loops.max(1) as f64;
        bars.push(Fig8Bar {
            benchmark: bench.name.to_string(),
            suite: bench.suite,
            percent: (
                100.0 * counts[0] as f64 / denom,
                100.0 * counts[1] as f64 / denom,
                100.0 * counts[2] as f64 / denom,
                100.0 * counts[3] as f64 / denom,
            ),
            loops,
        });
    }
    Ok(bars)
}

/// Renders the Figure 8 bars as two text panels.
#[must_use]
pub fn format_fig8(bars: &[Fig8Bar]) -> String {
    let mut s = String::new();
    for (suite, title) in [
        (Suite::SpecInt, "Figure 8(a) — SPEC integer benchmarks"),
        (
            Suite::MediabenchAndOthers,
            "Figure 8(b) — Mediabench and others",
        ),
    ] {
        s.push_str(title);
        s.push('\n');
        s.push_str("benchmark        loops   low%  avg%  good%  high%\n");
        for b in bars.iter().filter(|b| b.suite == suite) {
            s.push_str(&format!(
                "{:<16} {:>5}  {:>5.0} {:>5.0} {:>6.0} {:>6.0}\n",
                b.benchmark, b.loops, b.percent.0, b.percent.1, b.percent.2, b.percent.3
            ));
        }
        s.push('\n');
    }
    s
}

/// The schedules comparison (Figures 2, 3 and 5) plus the §2 analytic
/// speedups instantiated with parameters measured on the simulated machine.
#[derive(Debug, Clone)]
pub struct ScheduleComparison {
    /// Measured t1/t2/t3 model for the otter loop.
    pub model: LoopTimingModel,
    /// Analytic TLS speedup (2 threads).
    pub tls_speedup: f64,
    /// Analytic TLS+VP speedup at the measured stride-predictor accuracy.
    pub tls_vp_speedup: f64,
    /// Stride-predictor accuracy on the loop's live-in trace.
    pub stride_accuracy: f64,
    /// Spice boundary-survival probability measured on the same trace.
    pub spice_survival: f64,
    /// Analytic Spice speedup at that survival probability.
    pub spice_expected_speedup: f64,
    /// Measured Spice speedup (2 threads) from the simulator.
    pub spice_measured_speedup: f64,
    /// ASCII schedules, one per scheme.
    pub schedules: Vec<(ScheduleKind, Vec<String>)>,
}

/// Builds the per-iteration live-in traces of the otter loop across its
/// invocations (node addresses visited), used to feed the §2 value
/// predictors.
fn otter_livein_traces(small: bool) -> Vec<Vec<Vec<i64>>> {
    let mut wl = OtterWorkload::new(OtterConfig {
        initial_len: if small { 60 } else { 8_000 },
        inserts_per_invocation: 3,
        invocations: if small { 8 } else { 12 },
        seed: 0x07734,
    });
    let built = wl.build();
    let mut program = built.program;
    let _sites = spice_profiler::instrument_program(&mut program);
    let mut mem = spice_ir::interp::FlatMemory::for_program(&program, 1 << 20);
    let mut args = wl.init(&mut mem);
    let mut traces = Vec::new();
    let mut inv = 0usize;
    loop {
        let mut analyzer = spice_profiler::Analyzer::new(AnalyzerConfig::default());
        analyzer.new_invocation();
        let mut trace: Vec<Vec<i64>> = Vec::new();
        {
            let mut sys = CollectingSys {
                inner: spice_profiler::ProfilingSys::new(&mut analyzer),
                trace: &mut trace,
            };
            spice_ir::interp::run_function_with(
                &program,
                built.kernel,
                &args,
                &mut mem,
                &mut sys,
                100_000_000,
                |_, _, _| {},
            )
            .expect("otter trace run");
        }
        traces.push(trace);
        match wl.next_invocation(&mut mem, inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    traces
}

struct CollectingSys<'a, 'b> {
    inner: spice_profiler::ProfilingSys<'a>,
    trace: &'b mut Vec<Vec<i64>>,
}

impl spice_ir::interp::SysPort for CollectingSys<'_, '_> {
    fn send(&mut self, chan: i64, value: i64) {
        self.inner.send(chan, value);
    }
    fn try_recv(&mut self, chan: i64) -> Option<i64> {
        self.inner.try_recv(chan)
    }
    fn resteer(&mut self, core: i64, target: spice_ir::BlockId) {
        self.inner.resteer(core, target);
    }
    fn profile(&mut self, site: u32, values: &[i64]) {
        if values.iter().any(|&v| v != 0) {
            self.trace.push(values.to_vec());
        }
        self.inner.profile(site, values);
    }
}

/// Reproduces the §2 comparison (Figures 2, 3 and 5).
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn schedules(small: bool) -> Result<ScheduleComparison, String> {
    // Measure per-iteration timing of the otter loop on one core.
    let mut wl = OtterWorkload::new(OtterConfig {
        initial_len: if small { 60 } else { 8_000 },
        inserts_per_invocation: 3,
        invocations: 2,
        seed: 0x07734,
    });
    let built = wl.build();
    let config = MachineConfig::itanium2_cmp().with_cores(1);
    let inter_core = config.inter_core_latency as f64;
    let mut machine = Machine::new(config, built.program);
    let args = wl.init(machine.mem_mut());
    machine
        .spawn(0, built.kernel, &args)
        .map_err(|e| e.to_string())?;
    let summary = machine.run().map_err(|e| e.to_string())?;
    let iterations = wl.expected_iterations().max(1) as f64;
    let per_iter = summary.cycles as f64 / iterations;
    let mem_share = summary.cores[0].mem_stall_cycles as f64 / iterations;
    let t1 = mem_share.min(per_iter * 0.9);
    let t2 = (per_iter - t1).max(1.0);
    let model = LoopTimingModel::new(t1, t2, inter_core);

    // Predictor accuracies on the live-in traces.
    let traces = otter_livein_traces(small);
    let mut stride = StridePredictor::new();
    let stride_stats = evaluate_predictor(&mut stride, &traces);
    let mut last = LastValuePredictor::new();
    let _ = evaluate_predictor(&mut last, &traces);
    let spice_stats = SpiceMemoPredictor::new(1).evaluate(&traces);

    // Measured Spice speedup with 2 threads.
    let rows = {
        let mut seq = OtterWorkload::new(OtterConfig {
            initial_len: if small { 60 } else { 8_000 },
            inserts_per_invocation: 3,
            invocations: if small { 8 } else { 12 },
            seed: 0x07734,
        });
        let seq_cycles = run_workload_sequential(&mut seq)?;
        let mut par = OtterWorkload::new(OtterConfig {
            initial_len: if small { 60 } else { 8_000 },
            inserts_per_invocation: 3,
            invocations: if small { 8 } else { 12 },
            seed: 0x07734,
        });
        let estimate = par.expected_iterations();
        let result = run_workload_spice(&mut par, 2, predictor_options_with_estimate(estimate))?;
        seq_cycles as f64 / result.cycles as f64
    };

    Ok(ScheduleComparison {
        model,
        tls_speedup: model.tls_speedup(2),
        tls_vp_speedup: model.tls_value_prediction_speedup(2, stride_stats.accuracy()),
        stride_accuracy: stride_stats.accuracy(),
        spice_survival: spice_stats.accuracy(),
        spice_expected_speedup: model.spice_speedup(2, spice_stats.accuracy()),
        spice_measured_speedup: rows,
        schedules: vec![
            (ScheduleKind::Tls, render_schedule(ScheduleKind::Tls, 8)),
            (
                ScheduleKind::TlsValuePrediction,
                render_schedule(ScheduleKind::TlsValuePrediction, 8),
            ),
            (ScheduleKind::Spice, render_schedule(ScheduleKind::Spice, 8)),
        ],
    })
}

/// One ablation row: a predictor-configuration variant of the otter loop.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Total cycles with 4 threads.
    pub cycles: u64,
    /// Mis-speculation rate.
    pub misspeculation_rate: f64,
    /// Load imbalance.
    pub load_imbalance: f64,
}

/// Ablation of the predictor design choices the paper discusses in §4:
/// re-memoization every invocation vs. memoize-once, and dynamic load
/// balancing on/off.
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn ablation(small: bool) -> Result<Vec<AblationRow>, String> {
    let make = || {
        OtterWorkload::new(OtterConfig {
            initial_len: if small { 80 } else { 500 },
            inserts_per_invocation: 5,
            invocations: if small { 10 } else { 200 },
            seed: 0xab1a,
        })
    };
    let variants: Vec<(&str, PredictorOptions)> = vec![
        (
            "re-memoize + load balance (paper)",
            PredictorOptions::default(),
        ),
        (
            "memoize once",
            PredictorOptions {
                rememoize: false,
                ..PredictorOptions::default()
            },
        ),
        (
            "no load balancing",
            PredictorOptions {
                load_balance: false,
                ..PredictorOptions::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, mut opts) in variants {
        let mut wl = make();
        opts.initial_work_estimate = Some(wl.expected_iterations());
        let result = run_workload_spice(&mut wl, 4, opts)?;
        rows.push(AblationRow {
            variant: name.to_string(),
            cycles: result.cycles,
            misspeculation_rate: result.misspeculation_rate,
            load_imbalance: result.load_imbalance,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_machine() {
        let rows = table1();
        assert!(rows.iter().any(|(k, _)| k.contains("L1D")));
        assert!(rows.iter().any(|(_, v)| v.contains("141")));
    }

    #[test]
    fn fig7_small_produces_rows_for_all_benchmarks() {
        let rows = fig7(true).expect("fig7 small run");
        // Four paper loops + two conflict loops + the mcf_app miniature
        // application, at 2 and 4 threads each.
        assert_eq!(rows.len(), 14);
        // Since the centralized predictor step runs on core 0 (with its
        // cache/coherence traffic and the new_invocation token exchange
        // measured), the ~100-iteration small loops sit below the
        // amortization crossover — speedups above 1.0 are only expected at
        // full size. The small run must still be in a sane band, and the
        // text rendering mentions the geomean.
        let g4 = fig7_geomean(&rows, 4);
        assert!(
            g4 > 0.6 && g4 < 2.0,
            "4-thread small geomean out of band: {g4}"
        );
        for r in &rows {
            assert!(r.spice_cycles > 0 && r.speedup.is_finite());
        }
        let txt = format_fig7(&rows);
        assert!(txt.contains("GeoMean"));
        assert!(txt.contains("otter"));
        assert!(txt.contains("mcf_true"));
        assert!(txt.contains("mcf_app"));
        // The conflict-carrying rows actually exercised the subsystem: their
        // dependence-violation squashes were taken and recovered (results
        // are checked inside run_workload_on), while the dependence-free
        // paper loops must never trip it.
        for r in &rows {
            if FIG7_PAPER_BENCHMARKS.contains(&r.benchmark.as_str()) {
                assert_eq!(
                    r.dependence_violations, 0,
                    "{}: false conflict at {} threads",
                    r.benchmark, r.threads
                );
            }
        }
        assert!(
            rows.iter()
                .filter(|r| !FIG7_PAPER_BENCHMARKS.contains(&r.benchmark.as_str()))
                .any(|r| r.dependence_violations > 0),
            "conflict workloads never triggered a dependence violation"
        );
    }

    /// The emitted Figure 7 artifact parses back: adversarial workload
    /// names are escaped and non-finite metrics (NaN speedup from an empty
    /// run, infinite imbalance) become `null`, never bare tokens.
    #[test]
    fn fig7_json_round_trips_through_the_validator() {
        let rows = vec![
            Fig7Row {
                benchmark: "ks".to_string(),
                threads: 2,
                sequential_cycles: 100,
                spice_cycles: 80,
                speedup: 1.25,
                misspeculation_rate: 0.1,
                load_imbalance: 0.3,
                dependence_violations: 0,
            },
            Fig7Row {
                // A hostile name: quotes, backslash, newline.
                benchmark: "weird\"bench\\name\n".to_string(),
                threads: 4,
                sequential_cycles: 0,
                spice_cycles: 0,
                speedup: f64::NAN,
                misspeculation_rate: f64::INFINITY,
                load_imbalance: f64::NEG_INFINITY,
                dependence_violations: 3,
            },
        ];
        let doc = fig7_json(&rows, true);
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("emitted invalid JSON: {e}\n{doc}"));
        assert!(doc.contains("\\\"bench\\\\name\\n"), "name not escaped");
        assert!(doc.contains("\"speedup\": null"), "NaN not mapped to null");
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        // The real (small) artifact validates too.
        let real = fig7_json(&[], false);
        crate::json::validate(&real).unwrap();
    }

    #[test]
    fn harnessperf_small_runs_and_emits_valid_json() {
        let rows = harnessperf(true).expect("harnessperf small");
        // Seven workloads, three modes each.
        assert_eq!(rows.len(), 21);
        for r in &rows {
            assert!(r.simulated_cycles > 0, "{}/{}", r.benchmark, r.mode);
            assert!(r.host_nanos > 0, "{}/{}", r.benchmark, r.mode);
            assert!(r.ns_per_cycle().is_finite());
        }
        let doc = harnessperf_json(&rows, true);
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        let total = crate::json::extract_number(&doc, "ns_per_simulated_cycle");
        assert_eq!(
            total,
            Some((harness_ns_per_cycle(&rows) * 1e6).round() / 1e6)
        );
        let txt = format_harnessperf(&rows);
        assert!(txt.contains("TOTAL") && txt.contains("pre-PR"));
    }

    /// Measured-hotness regression (small suite, one-core test machine):
    /// the pure-kernel drivers attribute nearly every cycle to their loop —
    /// a faithful statement that they are kernels, not applications — while
    /// `mcf_app`'s refresh loop owns a *fraction* of a real program, and
    /// that fraction is pinned to a band so a serial-phase or attribution
    /// regression fails loudly. (The full-size Table 1-machine value is
    /// recorded in DESIGN.md §3.5 next to the paper's 30%.)
    #[test]
    fn mcf_app_measured_hotness_is_in_band() {
        let rows = table2(true).expect("table2 small");
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.measured_hotness > 0.0 && r.measured_hotness <= 1.0,
                "{}: hotness out of range: {}",
                r.benchmark,
                r.measured_hotness
            );
            if r.benchmark != "mcf_app" {
                assert!(
                    r.measured_hotness > 0.85,
                    "{}: kernel driver should be nearly all loop, got {}",
                    r.benchmark,
                    r.measured_hotness
                );
            }
        }
        // Stated band: the small instance measures ≈0.27 on the reduced
        // test machine (the full-size Table 1-machine value, 0.235, is
        // recorded in DESIGN.md §3.5 next to the paper's 0.30). The band is
        // wide enough for deliberate machine-model retunes but far from the
        // degenerate poles (≈1 would mean the serial phases vanished, ≈0
        // that the loop did).
        let app = rows.iter().find(|r| r.benchmark == "mcf_app").expect("row");
        assert!(
            (0.18..=0.40).contains(&app.measured_hotness),
            "mcf_app measured hotness left its band: {}",
            app.measured_hotness
        );
        // And it is genuinely *measured*: not the quoted constant.
        assert!((app.measured_hotness - app.paper_hotness).abs() > 1e-6);
    }

    #[test]
    fn schedules_small_matches_section2_ordering() {
        let cmp = schedules(true).expect("schedules");
        // TLS without value prediction is limited by the traversal chain;
        // Spice's expected speedup exceeds it, and the Spice boundary
        // survival probability beats the stride predictor's accuracy.
        assert!(cmp.tls_speedup < cmp.spice_expected_speedup);
        assert!(cmp.spice_survival > cmp.stride_accuracy);
        assert_eq!(cmp.schedules.len(), 3);
    }

    #[test]
    fn ablation_small_runs_all_variants() {
        let rows = ablation(true).expect("ablation");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.cycles > 0));
    }

    #[test]
    fn crosscheck_backends_agree_on_all_benchmarks() {
        let rows = crosscheck(4).expect("crosscheck");
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.agree,
                "{}: sim returned {:?}, native returned {:?}",
                r.benchmark, r.sim.return_values, r.native.return_values
            );
            assert_eq!(r.sim.invocations, r.native.invocations);
        }
        // The conflict-carrying workloads (and the mcf_app application,
        // whose refresh chain has the same faithful dependence) pass the
        // cross-check *because* both backends squash and recover dependence
        // violations; each must report having actually done so.
        for name in ["mcf_true", "list_splice", "mcf_app"] {
            let row = rows.iter().find(|r| r.benchmark == name).expect(name);
            assert!(
                row.sim.dependence_violations > 0,
                "{name}: sim backend reported no dependence violations"
            );
            assert!(
                row.native.dependence_violations > 0,
                "{name}: native backend reported no dependence violations"
            );
        }
    }
}
