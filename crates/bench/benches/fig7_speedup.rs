//! Wall-clock bench behind Figure 7: cost of simulating one sequential vs.
//! one Spice-parallelized run of each benchmark loop on small inputs. The
//! figure itself (simulated-cycle speedups) is produced by
//! `cargo run -p spice-bench --bin fig7`.
//!
//! This is a plain `harness = false` bench (the environment cannot fetch
//! criterion): each case is warmed up once, then timed over a fixed number of
//! iterations, reporting min/mean per-iteration wall time.

use std::time::Instant;

use spice_bench::experiments::{
    paper_workload_factories, run_workload_sequential, run_workload_spice,
};
use spice_core::pipeline::predictor_options_with_estimate;

fn time_case(name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    let min = samples.iter().min().unwrap();
    let mean = samples.iter().sum::<std::time::Duration>() / iters;
    println!("fig7/{name:<24} min {min:>12.3?}   mean {mean:>12.3?}   ({iters} iters)");
}

fn main() {
    let iters = if std::env::args().any(|a| a == "--quick") {
        2
    } else {
        10
    };
    for (name, factory) in paper_workload_factories(true) {
        time_case(&format!("{name}/sequential"), iters, || {
            let mut wl = factory();
            run_workload_sequential(wl.as_mut()).expect("sequential run");
        });
        time_case(&format!("{name}/spice4"), iters, || {
            let mut wl = factory();
            let est = wl.expected_iterations();
            run_workload_spice(wl.as_mut(), 4, predictor_options_with_estimate(est))
                .expect("spice run");
        });
    }
}
