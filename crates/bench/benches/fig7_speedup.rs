//! Criterion bench behind Figure 7: wall-clock cost of simulating one
//! sequential vs. one Spice-parallelized run of each benchmark loop on small
//! inputs. The figure itself (simulated-cycle speedups) is produced by
//! `cargo run -p spice-bench --bin fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::experiments::{
    paper_workload_factories, run_workload_sequential, run_workload_spice,
};
use spice_core::pipeline::predictor_options_with_estimate;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for (name, factory) in paper_workload_factories(true) {
        group.bench_function(format!("{name}/sequential"), |b| {
            b.iter(|| {
                let mut wl = factory();
                run_workload_sequential(wl.as_mut()).expect("sequential run")
            })
        });
        group.bench_function(format!("{name}/spice4"), |b| {
            b.iter(|| {
                let mut wl = factory();
                let est = wl.expected_iterations();
                run_workload_spice(wl.as_mut(), 4, predictor_options_with_estimate(est))
                    .expect("spice run")
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
