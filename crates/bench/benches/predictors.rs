//! Criterion bench behind the §2 / Figure 8 predictor comparison: throughput
//! of the value predictors over recorded live-in traces.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_core::valuepred::{
    evaluate_predictor, LastValuePredictor, SpiceMemoPredictor, StridePredictor,
};

fn traces() -> Vec<Vec<Vec<i64>>> {
    // Two invocations of a 512-node pointer chase with a small mutation.
    let a: Vec<Vec<i64>> = (0..512).map(|i| vec![1000 + i * 16]).collect();
    let mut b = a.clone();
    b.remove(40);
    b.insert(200, vec![99_999]);
    vec![a, b]
}

fn bench_predictors(c: &mut Criterion) {
    let t = traces();
    let mut group = c.benchmark_group("predictors");
    group.bench_function("last_value", |bch| {
        bch.iter(|| evaluate_predictor(&mut LastValuePredictor::new(), &t))
    });
    group.bench_function("stride", |bch| {
        bch.iter(|| evaluate_predictor(&mut StridePredictor::new(), &t))
    });
    group.bench_function("spice_memo", |bch| {
        bch.iter(|| SpiceMemoPredictor::new(3).evaluate(&t))
    });
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
