//! Bench behind the §2 / Figure 8 predictor comparison: throughput of the
//! value predictors over recorded live-in traces. Plain `harness = false`
//! timing loop (the environment cannot fetch criterion).

use std::hint::black_box;
use std::time::Instant;

use spice_core::valuepred::{
    evaluate_predictor, LastValuePredictor, SpiceMemoPredictor, StridePredictor,
};

fn traces() -> Vec<Vec<Vec<i64>>> {
    // Two invocations of a 512-node pointer chase with a small mutation.
    let a: Vec<Vec<i64>> = (0..512).map(|i| vec![1000 + i * 16]).collect();
    let mut b = a.clone();
    b.remove(40);
    b.insert(200, vec![99_999]);
    vec![a, b]
}

fn time_case(name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t.elapsed() / iters;
    println!("predictors/{name:<12} {per:>12.3?}/iter   ({iters} iters)");
}

fn main() {
    let t = traces();
    let iters = 200;
    time_case("last_value", iters, || {
        black_box(evaluate_predictor(&mut LastValuePredictor::new(), &t));
    });
    time_case("stride", iters, || {
        black_box(evaluate_predictor(&mut StridePredictor::new(), &t));
    });
    time_case("spice_memo", iters, || {
        black_box(SpiceMemoPredictor::new(3).evaluate(&t));
    });
}
