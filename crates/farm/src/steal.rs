//! The work-stealing task pool under the farm engine.
//!
//! Layout is the classic one (per-worker deques plus a global injector),
//! built on `std` only — the build environment is offline, so no runtime
//! crates:
//!
//! * every worker owns a deque seeded round-robin at construction and pops
//!   **its own newest** task (LIFO — cache-warm, and cheap because the far
//!   end is untouched);
//! * an idle worker first drains the **global injector** (FIFO — tasks
//!   pushed mid-run are picked up in submission order), then **steals the
//!   oldest** task of the most loaded victim (FIFO — the stolen task is the
//!   one its owner would have reached last, minimizing contention on the
//!   hot end);
//! * when every queue is empty the worker retires — the task set is closed
//!   once `run` starts, so "nothing to claim anywhere" is a stable
//!   termination condition, not a race.
//!
//! The pool does not know what a task computes; it schedules boxed
//! closures. Fairness and load balance come from stealing, not from any
//! up-front cost model — a worker stuck on one long simulation simply stops
//! claiming, and its remaining queue is eaten by the others.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A unit of work: claimed by exactly one worker, run exactly once.
pub type Task = Box<dyn FnOnce() + Send>;

/// Per-worker deques plus a global injector; all methods are `&self` and
/// thread-safe.
pub struct TaskPool {
    injector: Mutex<VecDeque<Task>>,
    workers: Vec<Mutex<VecDeque<Task>>>,
}

impl TaskPool {
    /// A pool with `workers` worker deques, seeding `tasks` round-robin so
    /// every worker starts with local work and stealing only happens once
    /// real imbalance shows up.
    #[must_use]
    pub fn seeded(workers: usize, tasks: Vec<Task>) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<Task>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            // Front-to-back per deque: combined with the LIFO own-pop this
            // makes worker w start on task w (its newest is its first seed
            // reversed)... which is irrelevant for correctness — jobs are
            // independent and results are reordered by id — so keep the
            // simple push.
            deques[i % workers].push_back(t);
        }
        TaskPool {
            injector: Mutex::new(VecDeque::new()),
            workers: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Pushes a task into the global injector (mid-run submission).
    pub fn inject(&self, task: Task) {
        self.injector
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Claims the next task for worker `w`: own deque (LIFO), the injector
    /// (FIFO), then the oldest task of the longest peer deque. `None` means
    /// every queue was observed empty — with a closed task set, permanent.
    pub fn claim(&self, w: usize) -> Option<Task> {
        if let Some(t) = self.workers[w].lock().expect("deque poisoned").pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(t);
        }
        self.steal(w)
    }

    /// Steals the oldest task from the most loaded victim deque.
    fn steal(&self, thief: usize) -> Option<Task> {
        // Pick the victim by snapshot length, then re-lock to take — the
        // snapshot may be stale, so fall through victims until one yields.
        let mut victims: Vec<(usize, usize)> = (0..self.workers.len())
            .filter(|&v| v != thief)
            .map(|v| (self.workers[v].lock().expect("deque poisoned").len(), v))
            .collect();
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for (len, v) in victims {
            if len == 0 {
                break;
            }
            if let Some(t) = self.workers[v].lock().expect("deque poisoned").pop_front() {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn every_seeded_task_is_claimed_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Task> = (0..37)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Task
            })
            .collect();
        let pool = Arc::new(TaskPool::seeded(4, tasks));
        std::thread::scope(|s| {
            for w in 0..pool.workers() {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    while let Some(t) = pool.claim(w) {
                        t();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn idle_workers_steal_from_the_loaded_one() {
        // All tasks seeded into a 1-deque pool viewed by 3 workers: workers
        // 1 and 2 have empty deques and can only make progress by stealing
        // or draining the injector.
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Task> = (0..16)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }) as Task
            })
            .collect();
        let pool = Arc::new(TaskPool::seeded(3, Vec::new()));
        for t in tasks {
            pool.workers[0].lock().unwrap().push_back(t);
        }
        {
            let c = Arc::clone(&counter);
            pool.inject(Box::new(move || {
                c.fetch_add(100, Ordering::Relaxed);
            }));
        }
        let claims = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            // Workers 1 and 2 only; worker 0 never runs, so every task that
            // executes was stolen or injected.
            for w in 1..3 {
                let pool = Arc::clone(&pool);
                let claims = Arc::clone(&claims);
                s.spawn(move || {
                    while let Some(t) = pool.claim(w) {
                        claims.fetch_add(1, Ordering::Relaxed);
                        t();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16 + 100);
        assert_eq!(claims.load(Ordering::Relaxed), 17);
    }
}
