//! Build-once cache for shared immutable job state.
//!
//! A sweep's jobs repeatedly need the same expensive immutable artifact —
//! for the simulation farm, a prepared program (decoded IR + initial memory
//! image). [`PreparedCache`] memoizes such builds by string key: the first
//! job to ask builds (fallibly), every later job — on any worker thread —
//! gets the shared [`Arc`]. A concurrent second requester for the same key
//! blocks until the first build finishes instead of duplicating it; errors
//! are memoized too, so a broken preparation fails every dependent job with
//! one message instead of rebuilding per job.
//!
//! The cache also answers the accounting question the engine cannot: how
//! much wall-time went into one-time builds ([`PreparedCache::build_nanos`])
//! versus simulation, and how often sharing actually happened
//! ([`PreparedCache::stats`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Entry<T> {
    slot: Mutex<Option<Result<Arc<T>, String>>>,
    build_nanos: AtomicU64,
}

/// Hit/miss/build-time counters of a [`PreparedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an existing entry.
    pub hits: usize,
    /// Lookups that had to build.
    pub misses: usize,
    /// Total wall nanoseconds spent inside build closures.
    pub build_nanos: u128,
}

/// A thread-safe, string-keyed, build-once cache of `Arc<T>` values.
pub struct PreparedCache<T> {
    entries: Mutex<HashMap<String, Arc<Entry<T>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<T> Default for PreparedCache<T> {
    fn default() -> Self {
        PreparedCache::new()
    }
}

impl<T> PreparedCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PreparedCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Returns the cached value for `key`, building it with `build` on the
    /// first request. The build runs under the entry's lock: concurrent
    /// requesters of the *same* key wait for one build; different keys never
    /// contend past the map lookup.
    ///
    /// # Errors
    ///
    /// Returns the build error, which is memoized: later requesters of the
    /// same key get the same error without re-running `build`.
    pub fn try_get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<T, String>,
    ) -> Result<Arc<T>, String> {
        let entry = {
            let mut map = self.entries.lock().expect("cache map poisoned");
            Arc::clone(map.entry(key.to_string()).or_insert_with(|| {
                Arc::new(Entry {
                    slot: Mutex::new(None),
                    build_nanos: AtomicU64::new(0),
                })
            }))
        };
        let mut slot = entry.slot.lock().expect("cache entry poisoned");
        if let Some(ready) = &*slot {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ready.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let built = build().map(Arc::new);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        entry.build_nanos.store(nanos, Ordering::Relaxed);
        *slot = Some(built.clone());
        built
    }

    /// Infallible convenience over [`PreparedCache::try_get_or_build`].
    pub fn get_or_build(&self, key: &str, build: impl FnOnce() -> T) -> Arc<T> {
        self.try_get_or_build(key, || Ok(build()))
            .expect("infallible build")
    }

    /// Total wall nanoseconds spent building entries so far.
    #[must_use]
    pub fn build_nanos(&self) -> u128 {
        let map = self.entries.lock().expect("cache map poisoned");
        map.values()
            .map(|e| u128::from(e.build_nanos.load(Ordering::Relaxed)))
            .sum()
    }

    /// Build nanoseconds of one key, if it has been built.
    #[must_use]
    pub fn build_nanos_of(&self, key: &str) -> Option<u128> {
        let map = self.entries.lock().expect("cache map poisoned");
        map.get(key)
            .map(|e| u128::from(e.build_nanos.load(Ordering::Relaxed)))
    }

    /// Hit/miss/build-time counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_nanos: self.build_nanos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_shares() {
        let cache: PreparedCache<Vec<u8>> = PreparedCache::new();
        let a = cache.get_or_build("k", || vec![1, 2, 3]);
        let b = cache.get_or_build("k", || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(cache.build_nanos_of("k").is_some());
        assert!(cache.build_nanos_of("absent").is_none());
    }

    #[test]
    fn errors_are_memoized() {
        let cache: PreparedCache<u32> = PreparedCache::new();
        let e1 = cache.try_get_or_build("bad", || Err("boom".to_string()));
        let e2: Result<Arc<u32>, String> =
            cache.try_get_or_build("bad", || panic!("must not rebuild after error"));
        assert_eq!(e1.unwrap_err(), "boom");
        assert_eq!(e2.unwrap_err(), "boom");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_requesters_build_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let cache: Arc<PreparedCache<usize>> = Arc::new(PreparedCache::new());
        let builds = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                s.spawn(move || {
                    let v = cache.get_or_build("shared", || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        7usize
                    });
                    assert_eq!(*v, 7);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }
}
