//! `spice-farm`: a work-stealing parallel job engine for simulation sweeps.
//!
//! The bench binaries run hundreds of independent simulations (one per
//! workload × size × thread count × seed). This crate turns that sweep into
//! jobs on a work-stealing pool of `std::thread` workers while keeping the
//! one property a benchmark artifact cannot lose: **output is a pure
//! function of the job list, never of completion order**.
//!
//! Three pieces provide that:
//!
//! * [`Job`] / [`JobResult`] — every job carries a caller-assigned
//!   deterministic id. Results are delivered to the caller's sink strictly
//!   in ascending id order, whatever order workers finish in, so a
//!   streaming writer produces byte-identical artifacts at `--jobs 1` and
//!   `--jobs N`.
//! * a work-stealing scheduler ([`steal::TaskPool`]) — per-worker deques
//!   seeded round-robin plus a global injector; idle workers steal the
//!   oldest task of the most loaded peer. No external crates.
//! * [`PreparedCache`] — a build-once, string-keyed cache so expensive
//!   immutable state (decoded programs, initial memory images) is built
//!   exactly once and shared by `Arc` across all jobs, with build time
//!   accounted separately from simulate time.
//!
//! The engine is deliberately generic: it does not know what a simulation
//! is. `spice-bench` supplies the domain model (job specs, manifests,
//! artifact writers) on top.

mod cache;
pub mod steal;

pub use cache::{CacheStats, PreparedCache};

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Instant;

use steal::{Task, TaskPool};

/// One schedulable unit of a sweep.
///
/// The `id` is assigned by the caller and must be unique within one
/// [`run_jobs`] call; it fixes the delivery order of results. Use a
/// deterministic enumeration of the sweep (manifest order) so artifacts
/// never depend on scheduling.
pub struct Job<T> {
    /// Caller-assigned unique id; results are sunk in ascending id order.
    pub id: u64,
    /// Human-readable tag carried into the [`JobResult`] (e.g.
    /// `"fig7/ks/t4"`).
    pub label: String,
    /// The work. Runs on some worker thread exactly once; a panic is caught
    /// and reported as an `Err` outcome instead of tearing the sweep down.
    pub work: Box<dyn FnOnce() -> Result<T, String> + Send>,
}

impl<T> Job<T> {
    /// Convenience constructor boxing the work closure.
    pub fn new(
        id: u64,
        label: impl Into<String>,
        work: impl FnOnce() -> Result<T, String> + Send + 'static,
    ) -> Self {
        Job {
            id,
            label: label.into(),
            work: Box::new(work),
        }
    }
}

/// Outcome of one [`Job`], delivered to the sink in id order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult<T> {
    /// The id the job was submitted with.
    pub id: u64,
    /// The label the job was submitted with.
    pub label: String,
    /// Wall nanoseconds the job's work closure ran for on its worker.
    pub host_nanos: u128,
    /// The job's value, or its error / panic message.
    pub outcome: Result<T, String>,
}

/// Per-job accounting row of a [`FarmStats`]: engine-measured compute time
/// plus domain counters (trace events observed, chunks squashed) the caller
/// fills in after the run — the engine itself does not know what a job
/// computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMetric {
    /// The job's caller-assigned id.
    pub id: u64,
    /// The job's label.
    pub label: String,
    /// Wall nanoseconds the job's work closure ran for.
    pub host_nanos: u128,
    /// Whether the job's outcome was `Ok`.
    pub ok: bool,
    /// Trace events the job's backend emitted (0 when tracing was off or
    /// the caller does not track events).
    pub events: u64,
    /// Speculative chunks the job observed being squashed (0 when not
    /// applicable).
    pub squashes: u64,
}

/// Aggregate accounting for one [`run_jobs`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs submitted (and delivered — every job yields exactly one result).
    pub jobs: usize,
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Jobs whose outcome was `Err` (including caught panics).
    pub failures: usize,
    /// Sum of per-job `host_nanos` — total compute, independent of overlap.
    pub total_job_nanos: u128,
    /// Wall nanoseconds from first spawn to last delivery.
    pub wall_nanos: u128,
    /// One row per job, in delivery (id) order. `events` / `squashes` are
    /// zero until the caller annotates them ([`FarmStats::annotate`]).
    pub details: Vec<JobMetric>,
}

impl FarmStats {
    /// Fills a job's domain counters by id (no-op for unknown ids).
    pub fn annotate(&mut self, id: u64, events: u64, squashes: u64) {
        if let Some(row) = self.details.iter_mut().find(|r| r.id == id) {
            row.events = events;
            row.squashes = squashes;
        }
    }
}

/// Resolves a requested worker count: `0` means "size to the host".
#[must_use]
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `jobs` on `workers` threads (0 = host parallelism), streaming each
/// [`JobResult`] into `sink` **strictly in ascending job id order** as jobs
/// retire. The sink runs on the calling thread; a result that finishes out
/// of order is buffered until every smaller id has been delivered.
///
/// Worker panics inside a job are caught and surfaced as `Err` outcomes;
/// the sweep always delivers exactly one result per job.
///
/// # Panics
///
/// Panics if two jobs share an id — delivery order would be ambiguous.
pub fn run_jobs<T: Send + 'static>(
    jobs: Vec<Job<T>>,
    workers: usize,
    mut sink: impl FnMut(JobResult<T>),
) -> FarmStats {
    let started = Instant::now();
    let total = jobs.len();
    let workers = resolve_workers(workers).min(total.max(1));

    // The delivery schedule: ascending ids, fixed before anything runs.
    let mut order: Vec<u64> = jobs.iter().map(|j| j.id).collect();
    order.sort_unstable();
    assert!(
        order.windows(2).all(|w| w[0] != w[1]),
        "duplicate job id in farm submission"
    );

    let (tx, rx) = mpsc::channel::<JobResult<T>>();
    let tasks: Vec<Task> = jobs
        .into_iter()
        .map(|job| {
            let tx = tx.clone();
            let Job { id, label, work } = job;
            Box::new(move || {
                let job_started = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(work)) {
                    Ok(result) => result,
                    Err(payload) => Err(panic_message(payload.as_ref())),
                };
                let result = JobResult {
                    id,
                    label,
                    host_nanos: job_started.elapsed().as_nanos(),
                    outcome,
                };
                // The receiver outlives the pool; a send failure means the
                // caller thread died, and unwinding here is the right answer.
                tx.send(result).expect("farm result channel closed");
            }) as Task
        })
        .collect();
    drop(tx);

    let pool = TaskPool::seeded(workers, tasks);
    let mut failures = 0usize;
    let mut total_job_nanos = 0u128;
    let mut details: Vec<JobMetric> = Vec::with_capacity(total);

    std::thread::scope(|scope| {
        for w in 0..pool.workers() {
            let pool = &pool;
            scope.spawn(move || {
                while let Some(task) = pool.claim(w) {
                    task();
                }
            });
        }

        // Reorder on the caller thread: buffer out-of-order arrivals, flush
        // the sink whenever the next expected id is available.
        let mut pending: HashMap<u64, JobResult<T>> = HashMap::new();
        let mut next = 0usize;
        for result in rx {
            total_job_nanos += result.host_nanos;
            if result.outcome.is_err() {
                failures += 1;
            }
            pending.insert(result.id, result);
            while next < order.len() {
                let Some(ready) = pending.remove(&order[next]) else {
                    break;
                };
                details.push(JobMetric {
                    id: ready.id,
                    label: ready.label.clone(),
                    host_nanos: ready.host_nanos,
                    ok: ready.outcome.is_ok(),
                    events: 0,
                    squashes: 0,
                });
                sink(ready);
                next += 1;
            }
        }
        assert!(pending.is_empty(), "farm lost a job result");
    });

    FarmStats {
        jobs: total,
        workers,
        failures,
        total_job_nanos,
        wall_nanos: started.elapsed().as_nanos(),
        details,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn sweep(n: u64) -> Vec<Job<u64>> {
        (0..n)
            .map(|i| Job::new(i, format!("job{i}"), move || Ok(i * i)))
            .collect()
    }

    #[test]
    fn results_arrive_in_id_order_regardless_of_worker_count() {
        for workers in [1, 2, 4, 7] {
            let mut seen = Vec::new();
            let stats = run_jobs(sweep(23), workers, |r| {
                seen.push((r.id, r.outcome.unwrap()));
            });
            let expect: Vec<(u64, u64)> = (0..23).map(|i| (i, i * i)).collect();
            assert_eq!(seen, expect, "workers={workers}");
            assert_eq!(stats.jobs, 23);
            assert_eq!(stats.failures, 0);
            assert!(stats.workers <= 23);
        }
    }

    #[test]
    fn id_order_holds_even_when_early_ids_finish_last() {
        // Job 0 sleeps; its result must still be sunk first.
        let jobs: Vec<Job<&'static str>> = vec![
            Job::new(0, "slow", || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Ok("slow")
            }),
            Job::new(1, "fast", || Ok("fast")),
            Job::new(2, "faster", || Ok("faster")),
        ];
        let mut labels = Vec::new();
        run_jobs(jobs, 3, |r| labels.push(r.label));
        assert_eq!(labels, ["slow", "fast", "faster"]);
    }

    #[test]
    fn sparse_and_unsorted_ids_deliver_ascending() {
        let jobs: Vec<Job<u64>> = [40u64, 7, 19]
            .into_iter()
            .map(|id| Job::new(id, id.to_string(), move || Ok(id)))
            .collect();
        let mut ids = Vec::new();
        run_jobs(jobs, 2, |r| ids.push(r.id));
        assert_eq!(ids, [7, 19, 40]);
    }

    #[test]
    fn a_panicking_job_becomes_an_err_and_the_sweep_survives() {
        let jobs: Vec<Job<u32>> = vec![
            Job::new(0, "ok", || Ok(1)),
            Job::new(1, "boom", || panic!("deliberate test panic")),
            Job::new(2, "err", || Err("plain error".to_string())),
            Job::new(3, "ok2", || Ok(4)),
        ];
        let mut outcomes = Vec::new();
        let stats = run_jobs(jobs, 2, |r| outcomes.push(r.outcome));
        assert_eq!(stats.failures, 2);
        assert_eq!(outcomes[0], Ok(1));
        assert_eq!(
            outcomes[1],
            Err("job panicked: deliberate test panic".to_string())
        );
        assert_eq!(outcomes[2], Err("plain error".to_string()));
        assert_eq!(outcomes[3], Ok(4));
    }

    #[test]
    fn all_workers_participate_under_load() {
        // 64 jobs that each record their thread; with 4 workers and jobs
        // long enough to overlap, more than one distinct thread must run.
        let distinct = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let jobs: Vec<Job<()>> = (0..64)
            .map(|i| {
                let distinct = Arc::clone(&distinct);
                Job::new(i, format!("j{i}"), move || {
                    distinct.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    Ok(())
                })
            })
            .collect();
        let stats = run_jobs(jobs, 4, |_| {});
        assert_eq!(stats.workers, 4);
        // On a single-core host the scheduler may still serialize onto one
        // thread; only assert when the host can actually overlap.
        if std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) >= 2 {
            assert!(distinct.lock().unwrap().len() >= 2);
        }
        assert!(stats.total_job_nanos > 0);
        assert!(stats.wall_nanos > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_ids_are_rejected() {
        let jobs: Vec<Job<u32>> = vec![Job::new(3, "a", || Ok(0)), Job::new(3, "b", || Ok(0))];
        run_jobs(jobs, 1, |_| {});
    }

    #[test]
    fn resolve_workers_contract() {
        assert_eq!(resolve_workers(5), 5);
        assert!(resolve_workers(0) >= 1);
    }
}
