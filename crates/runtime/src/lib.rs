//! # spice-runtime — native-thread speculative execution substrate
//!
//! The timing simulator (`spice-sim`) reproduces the paper's *measurements*;
//! this crate reproduces its *execution model* on real OS threads, for use as
//! a library runtime: a shared word heap with speculative write buffering
//! ([`heap::SharedHeap`], [`heap::SpecView`]), a chunked speculative loop
//! executor ([`chunks::NativeSpiceLoop`]) that carries memoized chunk
//! boundaries and the load-balancing work model across invocations — the
//! software equivalent of the paper's §3 architectural support plus
//! Algorithm 2 — and [`ir_backend::NativeLoopBackend`], which runs
//! *unmodified* `spice-ir` loops in Spice chunks on OS threads behind the
//! shared [`spice_ir::exec::ExecutionBackend`] API.
//!
//! Speculation and rollback fight Rust's ownership model (a squashed thread
//! must never have published anything); the design confines that tension to
//! the heap module: speculative threads never write shared memory, they
//! buffer, and only the main thread commits validated buffers, in order.
//!
//! ```
//! use spice_runtime::{ChunkKernel, HeapAccess, NativeSpiceLoop, SharedHeap};
//!
//! // Sum a linked list of (value, next) pairs.
//! struct ListSum;
//! impl ChunkKernel for ListSum {
//!     type Acc = i64;
//!     fn identity(&self) -> i64 { 0 }
//!     fn iteration(&self, mem: &mut HeapAccess<'_>, cursor: i64, acc: &mut i64) -> Option<i64> {
//!         *acc += mem.read(cursor)?;
//!         mem.read(cursor + 1)
//!     }
//!     fn combine(&self, into: &mut i64, from: i64) { *into += from; }
//! }
//!
//! let mut heap = SharedHeap::new(1024);
//! // Three nodes: values 1, 2, 3.
//! heap.fill(10, &[1, 12]);
//! heap.fill(12, &[2, 14]);
//! heap.fill(14, &[3, 0]);
//! let mut exec = NativeSpiceLoop::new(2);
//! exec.set_work_estimate(3);
//! let out = exec.run_invocation(&heap, &ListSum, 10);
//! assert_eq!(out.acc, 6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chunks;
pub mod heap;
pub mod ir_backend;

pub use chunks::{chunk_memo_plan, ChunkKernel, ChunkOutcome, NativeSpiceLoop};
pub use heap::{HeapAccess, SharedHeap, SpecView};
pub use ir_backend::NativeLoopBackend;
