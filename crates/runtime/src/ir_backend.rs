//! The native-thread [`ExecutionBackend`]: Spice chunked execution of an
//! *unmodified* IR loop on real OS threads.
//!
//! Where the simulator backend runs the code-generated transformation
//! (worker functions, channels, resteers) on simulated cores, this backend
//! realizes the same execution model interpretively: every thread steps a
//! [`ThreadState`] over the **original** kernel function, the speculative
//! workers are teleported to the loop header with their cursor registers set
//! to the live-in values memoized during the previous invocation, and the
//! main thread validates and commits their buffered stores in thread order —
//! the paper's Figures 4/5 with the interpreter standing in for hardware.
//!
//! Memory follows the `spice-runtime` speculation contract: the canonical
//! [`FlatMemory`] image is mirrored into a [`SharedHeap`] per invocation,
//! workers buffer writes in [`SpecView`]s, only validated buffers are
//! committed, and the heap is copied back afterwards so workload drivers see
//! one coherent memory between invocations.
//!
//! Chunk boundaries, squash recovery and the load balancer are the same
//! protocol as [`chunks`](crate::chunks) (immediate hand-off on matching
//! start, ordered commit, [`chunk_memo_plan`] thresholds); the difference is
//! that a "chunk" here is a slice of the *source loop's* iteration space
//! rather than of a hand-written [`ChunkKernel`](crate::chunks::ChunkKernel).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use spice_ir::exec::{
    derive_loop_spec, AccessSet, BackendError, ConflictPolicy, ExecutionBackend, ExecutionCost,
    ExecutionReport, LoadOptions, MisspeculationCause, SpiceLoopSpec, WorkerReport,
};
use spice_ir::interp::{FlatMemory, MemPort, StepEvent, SysPort, ThreadState};
use spice_ir::reduction::ReductionKind;
use spice_ir::{BlockId, FuncId, InstClass, Program, Reg, TrapKind};

use crate::chunks::chunk_memo_plan;
use crate::heap::{SharedHeap, SpecView};

/// Default per-thread interpreter step budget per invocation. A stale
/// prediction can send a speculative chunk on an unbounded walk (the paper's
/// "loop forever" case); the budget bounds it when the squash flag cannot.
const DEFAULT_STEP_BUDGET: u64 = 200_000_000;

/// How often (in steps) a worker polls its squash flag between header
/// arrivals — inner loops (e.g. mcf's climb) may not pass the header for a
/// while.
const SQUASH_POLL_INTERVAL: u64 = 1024;

/// Spice execution of IR loops on native OS threads, behind the shared
/// [`ExecutionBackend`] API.
#[derive(Debug)]
pub struct NativeLoopBackend {
    threads: usize,
    step_budget: u64,
    loaded: Option<Loaded>,
}

#[derive(Debug)]
struct Loaded {
    program: Program,
    kernel: FuncId,
    spec: SpiceLoopSpec,
    mem: FlatMemory,
    /// Memoized chunk-start live-ins, one row per speculative worker, one
    /// value per cursor register.
    predictions: Vec<Vec<i64>>,
    /// Per-thread iteration counts of the previous invocation (main first),
    /// feeding the load balancer.
    last_work: Vec<u64>,
    /// How cross-chunk memory dependences are treated: under
    /// [`ConflictPolicy::Detect`] every chunk records its load set and the
    /// ordered validation squashes RAW violations.
    policy: ConflictPolicy,
}

impl NativeLoopBackend {
    /// Creates a backend running `threads` OS threads (one non-speculative
    /// main + `threads - 1` speculative workers).
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "Spice needs at least two threads");
        NativeLoopBackend {
            threads,
            step_budget: DEFAULT_STEP_BUDGET,
            loaded: None,
        }
    }

    /// Overrides the per-thread interpreter step budget.
    #[must_use]
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = steps;
        self
    }

    /// Current chunk-boundary predictions (one row per worker), for tests
    /// and diagnostics.
    #[must_use]
    pub fn predictions(&self) -> Option<&[Vec<i64>]> {
        self.loaded.as_ref().map(|l| l.predictions.as_slice())
    }
}

impl ExecutionBackend for NativeLoopBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn load(
        &mut self,
        program: Program,
        kernel: FuncId,
        options: LoadOptions,
    ) -> Result<(), BackendError> {
        let spec = derive_loop_spec(&program, kernel, options.loop_header)?;
        let mem = FlatMemory::for_program(&program, options.heap_words.max(1024));
        let width = spec.cursors.len();
        let mut last_work = Vec::new();
        if let Some(estimate) = options.work_estimate {
            last_work = vec![0; self.threads];
            last_work[0] = estimate;
        }
        self.loaded = Some(Loaded {
            program,
            kernel,
            spec,
            mem,
            predictions: vec![vec![0; width]; self.threads - 1],
            last_work,
            policy: options.conflict_policy,
        });
        Ok(())
    }

    fn mem(&self) -> &FlatMemory {
        &self.loaded.as_ref().expect("load() first").mem
    }

    fn mem_mut(&mut self) -> &mut FlatMemory {
        &mut self.loaded.as_mut().expect("load() first").mem
    }

    fn run_invocation(&mut self, args: &[i64]) -> Result<ExecutionReport, BackendError> {
        let budget = self.step_budget;
        let threads = self.threads;
        let loaded = self.loaded.as_mut().ok_or(BackendError::NotLoaded)?;
        let workers = threads - 1;

        let mut heap = SharedHeap::from_words(loaded.mem.words());
        let detect = loaded.policy.detects();
        let memo_plan = chunk_memo_plan(&loaded.last_work, threads);
        let squash: Vec<AtomicBool> = (0..workers).map(|_| AtomicBool::new(false)).collect();
        let predictions = loaded.predictions.clone();
        let program = &loaded.program;
        let kernel = loaded.kernel;
        let spec = &loaded.spec;
        let alloc_base = loaded.mem.heap_next();

        // Time the chunked execution only: the memory mirroring above/below
        // is backend plumbing, not part of the loop's parallel runtime.
        let started = Instant::now();
        let outcome: Result<Invocation, BackendError> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for wi in 0..workers {
                let start = predictions[wi].clone();
                let successor = predictions.get(wi + 1).cloned();
                let plan = memo_plan[wi + 1].clone();
                let flag = &squash[wi];
                let heap_ref = &heap;
                let spawn_args = args;
                if start.iter().all(|&v| v == 0) {
                    handles.push(None);
                    continue;
                }
                handles.push(Some(scope.spawn(move || {
                    run_worker_chunk(
                        program, kernel, spec, spawn_args, heap_ref, &start, successor, flag,
                        &plan, budget, detect,
                    )
                })));
            }

            // Main (non-speculative) chunk on the calling thread, stopping at
            // the first worker's predicted boundary.
            let boundary = predictions
                .first()
                .filter(|p| workers > 0 && p.iter().any(|&v| v != 0))
                .cloned();
            let mut port = DirectPort {
                heap: &heap,
                alloc_next: alloc_base,
                write_log: detect.then(AccessSet::new),
            };
            let mut main = run_main_chunk(
                program,
                kernel,
                spec,
                args,
                &mut port,
                boundary,
                &memo_plan[0],
                budget,
            )?;

            // Ordered validation and commit (paper §3: the main thread is the
            // only committer, one chunk at a time, in thread order). Under
            // ConflictPolicy::Detect the union of the main chunk's and every
            // committed chunk's write addresses is carried along, and each
            // chunk's load set is intersected against it before acceptance —
            // the software form of the paper's hardware conflict detection.
            // After the main chunk, validation needs no further port access,
            // so recording stops here (the post-squash resume writes are
            // never checked against anything).
            let mut earlier_writes = port.write_log.take().unwrap_or_default();
            let mut committed = 0usize;
            let mut still_valid = main.matched;
            let mut end_reached = false;
            let mut resume_finals: Option<Vec<(Reg, i64)>> = None;
            let mut reports = Vec::with_capacity(workers);
            let mut work = vec![main.iterations];
            let mut memos = main.memos;
            // Registers whose resume values come from reduction combining,
            // not from copying the last committed chunk's state.
            let combined_regs: Vec<Reg> = spec
                .reductions
                .iter()
                .flat_map(|r| std::iter::once(r.reg).chain(r.payloads.iter().copied()))
                .collect();

            for (wi, handle) in handles.into_iter().enumerate() {
                let Some(handle) = handle else {
                    reports.push(WorkerReport {
                        committed: false,
                        cause: Some(MisspeculationCause::NoPrediction),
                        work: 0,
                    });
                    work.push(0);
                    still_valid = false;
                    continue;
                };
                if !still_valid || end_reached {
                    // The chain is broken: flag every not-yet-joined worker at
                    // once, so they all stop at their next poll instead of
                    // winding down serially as the join loop reaches them.
                    for flag in &squash[wi..] {
                        flag.store(true, Ordering::Release);
                    }
                }
                let result = handle.join().expect("worker thread panicked");
                // RAW check: did this chunk read a word an earlier chunk
                // wrote? Only meaningful while the chain is intact — once a
                // predecessor failed, the chunk is squashed regardless.
                let conflict = if detect && still_valid && !end_reached {
                    result.reads.first_overlap(&earlier_writes)
                } else {
                    None
                };
                let valid = still_valid
                    && !end_reached
                    && result.fault.is_none()
                    && conflict.is_none()
                    && (result.matched || result.reached_exit);
                if valid {
                    for (addr, value) in &result.writes {
                        // SAFETY: ordered commit — one worker at a time, by
                        // the main thread, after every worker stopped writing
                        // (`SpecPort` bounds-checks each buffered address).
                        unsafe { heap.write(*addr, *value) };
                    }
                    if detect {
                        earlier_writes.extend(result.writes.iter().map(|(a, _)| *a));
                    }
                    combine_reductions(spec, &mut main.state, &result.finals);
                    memos.extend(result.memos.iter().cloned());
                    work.push(result.iterations);
                    committed += 1;
                    end_reached = result.reached_exit;
                    still_valid = result.matched || result.reached_exit;
                    resume_finals = Some(result.finals);
                    reports.push(WorkerReport {
                        committed: true,
                        cause: None,
                        work: result.iterations,
                    });
                } else {
                    let cause = if !still_valid || end_reached {
                        MisspeculationCause::SquashCascade
                    } else if let Some(f) = result.fault {
                        f
                    } else if let Some(addr) = conflict {
                        MisspeculationCause::DependenceViolation { addr }
                    } else {
                        MisspeculationCause::StalePrediction
                    };
                    still_valid = false;
                    work.push(0);
                    reports.push(WorkerReport {
                        committed: false,
                        cause: Some(cause),
                        work: result.iterations,
                    });
                }
            }

            // Resume the main thread: on success from the terminal state of
            // the last committed chunk; after a squash from the first
            // non-validated boundary (which the last valid chunk reached
            // itself, so it is a genuine traversal point).
            let return_value = if let Some(v) = main.finished {
                v
            } else {
                if let Some(finals) = &resume_finals {
                    for (reg, value) in finals {
                        if !combined_regs.contains(reg) {
                            main.state.set_reg(*reg, *value);
                        }
                    }
                }
                // Resume through the same port, so allocations made during
                // the main chunk are not handed out a second time.
                let (value, extra_iterations) =
                    finish_main(program, spec, &mut main.state, &mut port, budget)?;
                work[0] += extra_iterations;
                value
            };

            Ok(Invocation {
                return_value,
                committed,
                reports,
                work,
                memos,
                alloc_next: port.alloc_next,
            })
        });
        let outcome = outcome?;
        let elapsed = started.elapsed();

        // Publish the invocation's memory effects and predictor feedback.
        loaded.mem.words_mut().copy_from_slice(heap.words_mut());
        loaded.mem.set_heap_next(outcome.alloc_next);
        for (row, cursors) in outcome.memos {
            if row < loaded.predictions.len() {
                loaded.predictions[row] = cursors;
            }
        }
        loaded.last_work = outcome.work.clone();

        Ok(ExecutionReport {
            backend: "native",
            cost: ExecutionCost::WallNanos(elapsed.as_nanos()),
            return_value: outcome.return_value,
            misspeculated: outcome.committed < workers,
            committed_chunks: outcome.committed,
            squashed_chunks: workers - outcome.committed,
            workers: outcome.reports,
            work_per_thread: outcome.work,
        })
    }
}

/// Result of one invocation, gathered inside the thread scope.
struct Invocation {
    return_value: Option<i64>,
    committed: usize,
    reports: Vec<WorkerReport>,
    work: Vec<u64>,
    memos: Vec<(usize, Vec<i64>)>,
    /// The main port's allocation cursor after the invocation, persisted
    /// into the canonical memory so `alloc` addresses never repeat.
    alloc_next: i64,
}

/// A worker's view of its chunk after it stopped.
struct WorkerChunk {
    /// The chunk ended on its successor's predicted boundary.
    matched: bool,
    /// The chunk ran the loop to its natural exit.
    reached_exit: bool,
    /// Why the chunk is invalid, if it faulted.
    fault: Option<MisspeculationCause>,
    iterations: u64,
    memos: Vec<(usize, Vec<i64>)>,
    writes: Vec<(i64, i64)>,
    /// Load set of the chunk (addresses read from the shared heap, not
    /// store-forwarded) — empty under `ConflictPolicy::AssumeIndependent`.
    reads: AccessSet,
    /// Final values of the spec-relevant registers (cursors, reductions,
    /// payloads, live-outs) at the stop point.
    finals: Vec<(Reg, i64)>,
}

/// The main thread's chunk: its paused (or finished) interpreter state.
struct MainChunk {
    state: ThreadState,
    /// Set when the function returned before reaching the boundary.
    finished: Option<Option<i64>>,
    matched: bool,
    iterations: u64,
    memos: Vec<(usize, Vec<i64>)>,
}

/// Non-speculative port: reads and writes go straight to the shared heap
/// (the main thread is the only direct writer during an invocation). While
/// `write_log` is set, every store address is recorded — the main chunk's
/// write set, the base the conflict validation intersects worker load sets
/// against.
struct DirectPort<'h> {
    heap: &'h SharedHeap,
    alloc_next: i64,
    write_log: Option<AccessSet>,
}

impl MemPort for DirectPort<'_> {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        self.heap
            .read(addr)
            .ok_or(TrapKind::OutOfBoundsAccess { addr })
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        if addr < 0 || addr as usize >= self.heap.len() {
            return Err(TrapKind::OutOfBoundsAccess { addr });
        }
        if let Some(log) = &mut self.write_log {
            log.insert(addr);
        }
        // SAFETY: Spice protocol — the main thread is the single
        // non-speculative writer while workers only read or buffer.
        unsafe { self.heap.write(addr, value) };
        Ok(())
    }

    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind> {
        if words < 0 {
            return Err(TrapKind::OutOfMemory);
        }
        let base = self.alloc_next;
        let end = base.checked_add(words).ok_or(TrapKind::OutOfMemory)?;
        if end as usize > self.heap.len() {
            return Err(TrapKind::OutOfMemory);
        }
        self.alloc_next = end;
        Ok(base)
    }
}

/// Speculative port: reads prefer the thread's own buffered writes, writes
/// are buffered (bounds-checked now so the later commit cannot fault).
struct SpecPort<'h> {
    view: SpecView<'h>,
    heap_len: usize,
}

impl MemPort for SpecPort<'_> {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        self.view
            .read_tracked(addr)
            .ok_or(TrapKind::OutOfBoundsAccess { addr })
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        if addr < 0 || addr as usize >= self.heap_len {
            return Err(TrapKind::OutOfBoundsAccess { addr });
        }
        self.view.write(addr, value);
        Ok(())
    }

    fn alloc(&mut self, _words: i64) -> Result<i64, TrapKind> {
        // Speculative allocation is unsupported; the chunk squashes.
        Err(TrapKind::OutOfMemory)
    }
}

/// System port for untransformed kernels: they contain no channel or
/// speculation intrinsics, so everything is inert. A `Recv` (which would
/// block forever) surfaces as [`StepEvent::Blocked`] and the caller treats
/// it as a fault.
struct NopSys;

impl SysPort for NopSys {
    fn send(&mut self, _chan: i64, _value: i64) {}
    fn try_recv(&mut self, _chan: i64) -> Option<i64> {
        None
    }
    fn resteer(&mut self, _core: i64, _target: BlockId) {}
}

/// Steps `state` until it next *arrives* at `block` (enters it through a
/// branch). Returns `Ok(None)` on arrival, `Ok(Some(v))` if the function
/// finished first, `Err` on trap/block/budget-exhaustion.
fn step_to_block_arrival(
    program: &Program,
    state: &mut ThreadState,
    mem: &mut dyn MemPort,
    sys: &mut dyn SysPort,
    block: BlockId,
    steps_left: &mut u64,
) -> Result<Option<Option<i64>>, TrapKind> {
    loop {
        if *steps_left == 0 {
            return Err(TrapKind::OutOfFuel);
        }
        *steps_left -= 1;
        match state.step(program, mem, sys)? {
            StepEvent::Executed(info) => {
                if info.class == InstClass::Branch && state.current_block() == block {
                    return Ok(None);
                }
            }
            StepEvent::Finished(v) => return Ok(Some(v)),
            StepEvent::Halted => return Ok(Some(None)),
            StepEvent::Blocked => return Err(TrapKind::UnsupportedIntrinsic),
        }
    }
}

/// Snapshot of the spec-relevant registers of a stopped chunk.
fn snapshot_finals(spec: &SpiceLoopSpec, state: &ThreadState) -> Vec<(Reg, i64)> {
    let mut regs: Vec<Reg> = spec.cursors.clone();
    regs.extend(spec.live_outs.iter().copied());
    for r in &spec.reductions {
        regs.push(r.reg);
        regs.extend(r.payloads.iter().copied());
    }
    regs.sort_unstable();
    regs.dedup();
    regs.into_iter().map(|r| (r, state.reg(r))).collect()
}

fn cursor_values(spec: &SpiceLoopSpec, state: &ThreadState) -> Vec<i64> {
    spec.cursors.iter().map(|&r| state.reg(r)).collect()
}

/// Runs one speculative worker chunk: teleport to the header with the
/// predicted cursors, iterate until the successor's boundary, the loop's
/// natural exit, a fault, or a squash.
#[allow(clippy::too_many_arguments)]
fn run_worker_chunk(
    program: &Program,
    kernel: FuncId,
    spec: &SpiceLoopSpec,
    args: &[i64],
    heap: &SharedHeap,
    start: &[i64],
    successor: Option<Vec<i64>>,
    squash: &AtomicBool,
    memo_plan: &[(u64, usize)],
    budget: u64,
    track_reads: bool,
) -> WorkerChunk {
    let mut state = ThreadState::new(program, kernel, args);
    let mut port = SpecPort {
        view: SpecView::with_read_tracking(heap, track_reads),
        heap_len: heap.len(),
    };
    let mut sys = NopSys;
    let mut steps = budget;
    let fault =
        |cause: MisspeculationCause, iterations, memos, port: SpecPort<'_>, state: &ThreadState| {
            let (writes, reads) = port.view.into_parts();
            WorkerChunk {
                matched: false,
                reached_exit: false,
                fault: Some(cause),
                iterations,
                memos,
                writes,
                reads,
                finals: snapshot_finals(spec, state),
            }
        };

    // Reach the loop header once through the function's own entry code
    // (binds invariant live-ins), then teleport into the chunk.
    match step_to_block_arrival(
        program,
        &mut state,
        &mut port,
        &mut sys,
        spec.header,
        &mut steps,
    ) {
        Ok(None) => {}
        Ok(Some(_)) | Err(_) => {
            return fault(
                MisspeculationCause::Fault(TrapKind::UnsupportedIntrinsic),
                0,
                Vec::new(),
                port,
                &state,
            );
        }
    }
    for (reg, value) in spec.cursors.iter().zip(start) {
        state.set_reg(*reg, *value);
    }
    for r in &spec.reductions {
        state.set_reg(r.reg, r.kind.identity());
    }
    // Entry/preheader code belongs to the main thread's execution; any stores
    // it made were buffered above only to keep this thread's reads coherent.
    // Drop them so a validated chunk commits loop-body stores exclusively —
    // otherwise every worker would replay pre-loop stores over values the
    // main thread wrote later in the invocation. The *reads* stay: the entry
    // replay raced the main chunk, so an entry load of a word the loop
    // writes (e.g. an invariant register bound from a global the body
    // stores to) is a dependence the conflict validation must observe.
    port.view.drop_writes();

    let successor_active = successor
        .as_ref()
        .is_some_and(|s| s.iter().any(|&v| v != 0));
    let mut iterations: u64 = 0;
    let mut memo_idx = 0usize;
    let mut memos = Vec::new();
    let mut since_poll: u64 = 0;
    loop {
        // Boundary checks, on every header arrival.
        let cur = cursor_values(spec, &state);
        if successor_active {
            let succ = successor.as_ref().expect("active successor");
            if cur == *succ && (iterations > 0 || start == succ.as_slice()) {
                let (writes, reads) = port.view.into_parts();
                return WorkerChunk {
                    matched: true,
                    reached_exit: false,
                    fault: None,
                    iterations,
                    memos,
                    writes,
                    reads,
                    finals: snapshot_finals(spec, &state),
                };
            }
        }
        if squash.load(Ordering::Acquire) {
            return fault(
                MisspeculationCause::SquashCascade,
                iterations,
                memos,
                port,
                &state,
            );
        }
        if memo_idx < memo_plan.len() && iterations >= memo_plan[memo_idx].0 {
            // Never memoize the exit sentinel (all-zero cursors): a chunk
            // cannot start from "done", and an all-zero row doubles as the
            // no-prediction marker. Skipping keeps the row's previous value,
            // like the kernel-based runtime, which stops before memoizing 0.
            if cur.iter().any(|&v| v != 0) {
                memos.push((memo_plan[memo_idx].1, cur));
            }
            memo_idx += 1;
        }

        // One iteration: step until the next header arrival (or the exit).
        loop {
            if steps == 0 {
                return fault(
                    MisspeculationCause::Fault(TrapKind::OutOfFuel),
                    iterations,
                    memos,
                    port,
                    &state,
                );
            }
            steps -= 1;
            since_poll += 1;
            if since_poll >= SQUASH_POLL_INTERVAL {
                since_poll = 0;
                if squash.load(Ordering::Acquire) {
                    return fault(
                        MisspeculationCause::SquashCascade,
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
            }
            match state.step(program, &mut port, &mut sys) {
                Ok(StepEvent::Executed(info)) => {
                    if info.class == InstClass::Branch {
                        if state.current_block() == spec.exit_block {
                            // The loop genuinely ended inside this chunk; the
                            // main thread executes the exit code itself.
                            let (writes, reads) = port.view.into_parts();
                            return WorkerChunk {
                                matched: false,
                                reached_exit: true,
                                fault: None,
                                iterations: iterations + 1,
                                memos,
                                writes,
                                reads,
                                finals: snapshot_finals(spec, &state),
                            };
                        }
                        if state.current_block() == spec.header {
                            iterations += 1;
                            break;
                        }
                    }
                }
                Ok(StepEvent::Finished(_)) | Ok(StepEvent::Halted) => {
                    return fault(
                        MisspeculationCause::Fault(TrapKind::UnsupportedIntrinsic),
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
                Ok(StepEvent::Blocked) => {
                    return fault(
                        MisspeculationCause::Fault(TrapKind::UnsupportedIntrinsic),
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
                Err(trap) => {
                    return fault(
                        MisspeculationCause::Fault(trap),
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
            }
        }
    }
}

/// Runs the main thread's chunk up to the first worker's predicted boundary
/// (or to completion when there is none / it is never reached).
#[allow(clippy::too_many_arguments)]
fn run_main_chunk(
    program: &Program,
    kernel: FuncId,
    spec: &SpiceLoopSpec,
    args: &[i64],
    port: &mut DirectPort<'_>,
    boundary: Option<Vec<i64>>,
    memo_plan: &[(u64, usize)],
    budget: u64,
) -> Result<MainChunk, BackendError> {
    let mut state = ThreadState::new(program, kernel, args);
    let mut sys = NopSys;
    let mut steps = budget;

    match step_to_block_arrival(program, &mut state, port, &mut sys, spec.header, &mut steps) {
        Ok(None) => {}
        Ok(Some(v)) => {
            return Ok(MainChunk {
                state,
                finished: Some(v),
                matched: false,
                iterations: 0,
                memos: Vec::new(),
            })
        }
        Err(trap) => return Err(engine_trap(trap)),
    }

    let start = cursor_values(spec, &state);
    let boundary_active = boundary.as_ref().is_some_and(|b| b.iter().any(|&v| v != 0));
    let mut iterations: u64 = 0;
    let mut memo_idx = 0usize;
    let mut memos = Vec::new();
    loop {
        let cur = cursor_values(spec, &state);
        if boundary_active {
            let b = boundary.as_ref().expect("active boundary");
            if cur == *b && (iterations > 0 || start == *b) {
                return Ok(MainChunk {
                    state,
                    finished: None,
                    matched: true,
                    iterations,
                    memos,
                });
            }
        }
        if memo_idx < memo_plan.len() && iterations >= memo_plan[memo_idx].0 {
            // See run_worker_chunk: the all-zero exit sentinel is never a
            // valid chunk start, so it is never memoized.
            if cur.iter().any(|&v| v != 0) {
                memos.push((memo_plan[memo_idx].1, cur));
            }
            memo_idx += 1;
        }
        match step_to_block_arrival(program, &mut state, port, &mut sys, spec.header, &mut steps) {
            Ok(None) => iterations += 1,
            Ok(Some(v)) => {
                return Ok(MainChunk {
                    state,
                    finished: Some(v),
                    matched: false,
                    iterations,
                    memos,
                })
            }
            Err(trap) => return Err(engine_trap(trap)),
        }
    }
}

/// Runs the (already repositioned) main thread to completion, counting the
/// additional loop iterations it executes.
fn finish_main(
    program: &Program,
    spec: &SpiceLoopSpec,
    state: &mut ThreadState,
    port: &mut DirectPort<'_>,
    budget: u64,
) -> Result<(Option<i64>, u64), BackendError> {
    let mut sys = NopSys;
    let mut steps = budget;
    let mut iterations: u64 = 0;
    loop {
        if steps == 0 {
            return Err(engine_trap(TrapKind::OutOfFuel));
        }
        steps -= 1;
        match state.step(program, port, &mut sys) {
            Ok(StepEvent::Executed(info)) => {
                if info.class == InstClass::Branch && state.current_block() == spec.header {
                    iterations += 1;
                }
            }
            Ok(StepEvent::Finished(v)) => return Ok((v, iterations)),
            Ok(StepEvent::Halted) => return Ok((None, iterations)),
            Ok(StepEvent::Blocked) => return Err(engine_trap(TrapKind::UnsupportedIntrinsic)),
            Err(trap) => return Err(engine_trap(trap)),
        }
    }
}

fn engine_trap(trap: TrapKind) -> BackendError {
    BackendError::Engine(format!("main thread trapped: {trap}"))
}

/// Folds a committed chunk's reduction accumulators (and payloads) into the
/// main thread's registers, in thread order.
fn combine_reductions(spec: &SpiceLoopSpec, main: &mut ThreadState, finals: &[(Reg, i64)]) {
    let lookup = |reg: Reg| finals.iter().find(|(r, _)| *r == reg).map(|(_, v)| *v);
    for red in &spec.reductions {
        let Some(theirs) = lookup(red.reg) else {
            continue;
        };
        let ours = main.reg(red.reg);
        match red.kind {
            ReductionKind::Min => {
                // Strict comparison keeps the earliest chunk's value on ties,
                // matching the sequential first-minimum semantics.
                if theirs < ours {
                    main.set_reg(red.reg, theirs);
                    for &p in &red.payloads {
                        if let Some(v) = lookup(p) {
                            main.set_reg(p, v);
                        }
                    }
                }
            }
            ReductionKind::Max => {
                if theirs > ours {
                    main.set_reg(red.reg, theirs);
                    for &p in &red.payloads {
                        if let Some(v) = lookup(p) {
                            main.set_reg(p, v);
                        }
                    }
                }
            }
            ReductionKind::Binop(op) => {
                if let Ok(v) = op.eval(ours, theirs) {
                    main.set_reg(red.reg, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::{BinOp, Operand};

    /// The canonical list-minimum loop with an argmin payload and a store in
    /// the exit block, over `(weight, next)` node pairs.
    fn list_min_program(capacity: i64) -> (Program, FuncId, i64, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let out = program.add_global("out", 1);
        let mut b = FunctionBuilder::new("list_min");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let wm = b.copy(i64::MAX);
        let cm = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let nw = b.select(better, w, wm);
        b.copy_into(wm, nw);
        let nc = b.select(better, c, cm);
        b.copy_into(cm, nc);
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out, 0);
        b.ret(Some(Operand::Reg(wm)));
        let f = program.add_func(b.finish());
        (program, f, nodes, out)
    }

    fn write_list(mem: &mut FlatMemory, base: i64, weights: &[i64]) -> i64 {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + 2 * i as i64;
            let next = if i + 1 < weights.len() { addr + 2 } else { 0 };
            mem.write(addr, *w).unwrap();
            mem.write(addr + 1, next).unwrap();
        }
        base
    }

    #[test]
    fn native_backend_runs_list_min_and_learns_boundaries() {
        let weights: Vec<i64> = (0..400).map(|i| ((i * 37) % 211) + 5).collect();
        let (program, f, nodes, out) = list_min_program(weights.len() as i64 + 4);
        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        let expected = *weights.iter().min().unwrap();

        let mut saw_parallel = false;
        for inv in 0..4 {
            let report = backend.run_invocation(&[head]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
            assert_eq!(report.backend, "native");
            // The exit-block store committed through the direct port.
            let argmin = backend.mem().read(out).unwrap();
            assert_eq!(backend.mem().read(argmin).unwrap(), expected);
            if report.committed_chunks == 3 {
                saw_parallel = true;
                assert!(!report.misspeculated);
                let active = report.work_per_thread.iter().filter(|&&w| w > 0).count();
                assert!(active >= 3, "work: {:?}", report.work_per_thread);
            }
        }
        assert!(saw_parallel, "chunk predictions never converged");
    }

    #[test]
    fn stale_native_predictions_squash_but_stay_correct() {
        let weights: Vec<i64> = (0..300).map(|i| 1000 - i).collect();
        let (program, f, nodes, _) = list_min_program(weights.len() as i64 + 4);
        let mut backend = NativeLoopBackend::new(3);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        backend.run_invocation(&[head]).unwrap();
        backend.run_invocation(&[head]).unwrap();

        // Rebuild a shorter list skipping every other node: many memoized
        // cursors no longer appear in the traversal.
        let shorter: Vec<i64> = weights.iter().copied().step_by(2).collect();
        for w in backend.mem_mut().words_mut().iter_mut() {
            *w = 0;
        }
        let head2 = {
            let mem = backend.mem_mut();
            for (i, w) in shorter.iter().enumerate() {
                let addr = nodes + 4 * i as i64;
                let next = if i + 1 < shorter.len() { addr + 4 } else { 0 };
                mem.write(addr, *w).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
            nodes
        };
        let out = backend.run_invocation(&[head2]).unwrap();
        assert_eq!(out.return_value, Some(*shorter.iter().min().unwrap()));
        // Re-learning: after another invocation the new boundaries hold.
        let out2 = backend.run_invocation(&[head2]).unwrap();
        assert_eq!(out2.return_value, Some(*shorter.iter().min().unwrap()));
    }

    /// A list walk carrying a genuine cross-chunk RAW dependence: visiting
    /// node `i` stores `value(i) + 1` into node `i+1`'s value word, which the
    /// next iteration then loads. Chunked execution reads stale values unless
    /// the conflict subsystem squashes, so correctness of the result proves
    /// detection and recovery work.
    fn chained_increment_program(capacity: i64) -> (Program, FuncId, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let mut b = FunctionBuilder::new("chained_increment");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let poke = b.new_block();
        let advance = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 0);
        let s = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s);
        let n = b.load(c, 1);
        let has_next = b.binop(BinOp::Ne, n, 0i64);
        b.cond_br(has_next, poke, advance);
        b.switch_to(poke);
        let bumped = b.binop(BinOp::Add, v, 1i64);
        b.store(bumped, n, 0);
        b.br(advance);
        b.switch_to(advance);
        b.copy_into(c, n);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = program.add_func(b.finish());
        (program, f, nodes)
    }

    #[test]
    fn cross_chunk_raw_dependence_is_squashed_and_recovered() {
        let n: i64 = 200;
        let v0: i64 = 50;
        let (program, f, nodes) = chained_increment_program(n + 4);
        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(program, f, LoadOptions::new(4096, Some(n as u64)))
            .unwrap();
        {
            let mem = backend.mem_mut();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, if i == 0 { v0 } else { 0 }).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        // Sequentially: value(i) becomes v0 + i before it is read.
        let expected = n * v0 + n * (n - 1) / 2;

        let mut saw_violation = false;
        for inv in 0..5 {
            let report = backend.run_invocation(&[nodes]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
            for i in 1..n {
                assert_eq!(
                    backend.mem().read(nodes + 2 * i).unwrap(),
                    v0 + i,
                    "node {i} potential after invocation {inv}"
                );
            }
            if report
                .misspeculation_causes()
                .iter()
                .any(|c| matches!(c, MisspeculationCause::DependenceViolation { .. }))
            {
                saw_violation = true;
                assert!(report.misspeculated);
                assert!(report.squashed_chunks > 0);
            }
        }
        assert!(
            saw_violation,
            "speculative chunks never tripped the conflict detector"
        );
    }

    /// Regression: the loop's *entry code* loads a global that the loop body
    /// stores to. The invariant register bound by a worker's entry replay
    /// races the main chunk's stores, so the replay's reads must stay in the
    /// chunk's load set — dropping them with the replayed writes would let a
    /// chunk computed from a mid-loop value of `g` commit.
    #[test]
    fn entry_code_reads_participate_in_conflict_detection() {
        let n: i64 = 160;
        let mut program = Program::new();
        let nodes = program.add_global("nodes", (n + 4) * 2);
        let g = program.add_global("g", 1);
        let mut b = FunctionBuilder::new("entry_bound");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let base = b.load(g, 0); // entry: bind the invariant from memory
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 0);
        let bv = b.binop(BinOp::Add, base, v);
        let s = b.binop(BinOp::Add, sum, bv);
        b.copy_into(sum, s);
        b.store(bv, g, 0); // the body overwrites what the entry read
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = program.add_func(b.finish());

        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(program, f, LoadOptions::new(4096, Some(n as u64)))
            .unwrap();
        {
            let mem = backend.mem_mut();
            mem.write(g, 1000).unwrap();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, i + 1).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        for inv in 0..5 {
            // Host mirror: base is g's value at entry, fixed per invocation.
            let base = backend.mem().read(g).unwrap();
            let expected: i64 = (1..=n).map(|v| base + v).sum();
            let report = backend.run_invocation(&[nodes]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
            assert_eq!(backend.mem().read(g).unwrap(), base + n, "invocation {inv}");
        }
    }

    #[test]
    fn assume_independent_policy_skips_detection() {
        // Same conflict-carrying loop, detection off: results may be stale,
        // but no DependenceViolation may ever be reported. (This documents
        // that AssumeIndependent really is the caller's assertion.)
        let n: i64 = 120;
        let (program, f, nodes) = chained_increment_program(n + 4);
        let mut backend = NativeLoopBackend::new(3);
        let options = LoadOptions::new(4096, Some(n as u64))
            .with_conflict_policy(spice_ir::exec::ConflictPolicy::AssumeIndependent);
        backend.load(program, f, options).unwrap();
        {
            let mem = backend.mem_mut();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, 1).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        for _ in 0..4 {
            let report = backend.run_invocation(&[nodes]).unwrap();
            assert!(report
                .misspeculation_causes()
                .iter()
                .all(|c| !matches!(c, MisspeculationCause::DependenceViolation { .. })));
        }
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn single_thread_is_rejected() {
        let _ = NativeLoopBackend::new(1);
    }

    #[test]
    fn run_before_load_errors() {
        let mut backend = NativeLoopBackend::new(2);
        assert!(matches!(
            backend.run_invocation(&[0]),
            Err(BackendError::NotLoaded)
        ));
    }
}
