//! The native-thread [`ExecutionBackend`]: Spice chunked execution of an
//! *unmodified* IR loop on real OS threads.
//!
//! Where the simulator backend runs the code-generated transformation
//! (worker functions, channels, resteers) on simulated cores, this backend
//! realizes the same execution model interpretively: every thread steps a
//! [`ThreadState`] over the **original** kernel function, the speculative
//! workers are teleported to the loop header with their cursor registers set
//! to the live-in values memoized during the previous invocation, and the
//! main thread validates and commits their buffered stores in thread order —
//! the paper's Figures 4/5 with the interpreter standing in for hardware.
//!
//! The execution model matches the paper's pre-spawned runtime: the worker
//! threads (plus a dedicated predictor thread) are spawned **once**, at the
//! first invocation, and persist across the whole run. Each invocation sends
//! every predicted worker a `new_invocation` token — a [`WorkerTask`]
//! carrying that invocation's start/successor predictions and memoization
//! plan — over its channel; workers block on the channel between
//! invocations. The centralized half of Algorithm 2 ([`chunk_memo_plan`])
//! runs on the pool's dedicated predictor thread *inside* the timed window,
//! so its wall-time is part of the invocation's cost, not the driver's.
//!
//! Memory follows the `spice-runtime` speculation contract: a *persistent*
//! [`SharedHeap`] mirrors the canonical [`FlatMemory`] image — re-mirrored
//! only when a driver actually mutated the image since the last commit —
//! workers buffer writes in [`SpecView`]s, only validated buffers are
//! committed, and the heap is copied back afterwards so workload drivers see
//! one coherent memory between invocations.
//!
//! Chunk boundaries, squash recovery and the load balancer are the same
//! protocol as [`chunks`](crate::chunks) (immediate hand-off on matching
//! start, ordered commit, [`chunk_memo_plan`] thresholds); the difference is
//! that a "chunk" here is a slice of the *source loop's* iteration space
//! rather than of a hand-written [`ChunkKernel`](crate::chunks::ChunkKernel).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use spice_ir::exec::{
    derive_loop_spec, AccessSet, BackendError, ConflictPolicy, ExecutionBackend, ExecutionCost,
    ExecutionReport, LoadOptions, MisspeculationCause, SpiceLoopSpec, WorkerReport,
};
use spice_ir::interp::{FlatMemory, MemPort, StepEvent, SysPort, ThreadState};
use spice_ir::reduction::ReductionKind;
use spice_ir::{
    BlockId, DecodedProgram, FuncId, InstClass, Program, Reg, SquashForensics, TraceEvent,
    TraceRecorder, TraceSink, TrapKind,
};

use crate::chunks::chunk_memo_plan;
use crate::heap::{SharedHeap, SpecView};

/// Default per-thread interpreter step budget per invocation. A stale
/// prediction can send a speculative chunk on an unbounded walk (the paper's
/// "loop forever" case); the budget bounds it when the squash flag cannot.
const DEFAULT_STEP_BUDGET: u64 = 200_000_000;

/// How often (in steps) a worker polls its squash flag between header
/// arrivals — inner loops (e.g. mcf's climb) may not pass the header for a
/// while.
const SQUASH_POLL_INTERVAL: u64 = 1024;

/// Spice execution of IR loops on native OS threads, behind the shared
/// [`ExecutionBackend`] API. The worker pool is pre-spawned at the first
/// invocation and reused for every later one (and across `load`s — it
/// depends only on the thread count).
#[derive(Debug)]
pub struct NativeLoopBackend {
    threads: usize,
    step_budget: u64,
    loaded: Option<Loaded>,
    pool: Option<WorkerPool>,
    tracing: NativeTracing,
}

/// Trace mirror state for the native backend. The simulator's chunk
/// lifecycle subset (`ChunkBegin`/`ChunkValidate`/`ChunkCommit`/
/// `ChunkSquash`, plus invocation and predictor markers) is re-emitted
/// here — exclusively from the ordered main-thread sections of
/// `run_invocation`, so the trace is deterministic regardless of how the
/// host schedules the worker threads. `at` carries a monotone sequence
/// number in place of a simulated cycle.
#[derive(Debug, Default)]
struct NativeTracing {
    rec: Option<TraceRecorder>,
    /// Monotone event sequence number (the native `at` coordinate).
    seq: u64,
    /// Monotone chunk id allocator; never reset, so ids are unique across
    /// invocations like the simulator's forensic chunk ids.
    chunk_next: u64,
    /// Zero-based invocation counter for `InvocationBegin`.
    invocations: u64,
}

impl NativeTracing {
    fn on(&self) -> bool {
        self.rec.is_some()
    }

    fn next_at(&mut self) -> u64 {
        let at = self.seq;
        self.seq += 1;
        at
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(rec) = self.rec.as_mut() {
            rec.emit(event);
        }
    }
}

#[derive(Debug)]
struct Loaded {
    /// The pre-decoded execution form every thread steps over, built once at
    /// `load` (the structured [`Program`] is consumed by the loop analysis
    /// and the decode; nothing at run time walks it).
    decoded: Arc<DecodedProgram>,
    kernel: FuncId,
    spec: Arc<SpiceLoopSpec>,
    mem: FlatMemory,
    /// Persistent shared heap the threads execute against. Mirrors `mem`;
    /// re-synced from it only when `heap_dirty` says a driver mutated the
    /// canonical image since the last post-invocation commit.
    heap: Arc<SharedHeap>,
    /// Set by [`NativeLoopBackend::mem_mut`]; cleared whenever heap and
    /// canonical image are known identical.
    heap_dirty: bool,
    /// Memoized chunk-start live-ins, one row per speculative worker, one
    /// value per cursor register.
    predictions: Vec<Vec<i64>>,
    /// Per-thread iteration counts of the previous invocation (main first),
    /// feeding the load balancer.
    last_work: Vec<u64>,
    /// How cross-chunk memory dependences are treated: under
    /// [`ConflictPolicy::Detect`] every chunk records its load set and the
    /// ordered validation squashes RAW violations.
    policy: ConflictPolicy,
    /// Conflict-set coarsening (power-of-two words per grain; 0 = exact).
    granularity_log2: u8,
    /// The memoization plan of the most recent invocation (the centralized
    /// step's output), per thread.
    last_plan: Vec<Vec<(u64, usize)>>,
}

/// One `new_invocation` token: everything a pre-spawned worker needs to run
/// its speculative chunk for the current invocation.
struct WorkerTask {
    program: Arc<DecodedProgram>,
    kernel: FuncId,
    spec: Arc<SpiceLoopSpec>,
    args: Vec<i64>,
    heap: Arc<SharedHeap>,
    start: Vec<i64>,
    successor: Option<Vec<i64>>,
    squash: Arc<AtomicBool>,
    plan: Vec<(u64, usize)>,
    budget: u64,
    detect: bool,
    granularity_log2: u8,
}

/// A pre-spawned worker thread: tasks go down `task_tx`, one
/// [`WorkerChunk`] comes back per task. The thread blocks on its channel
/// between invocations — the software form of the paper's workers waiting
/// for the `new_invocation` token.
#[derive(Debug)]
struct PoolWorker {
    task_tx: Option<Sender<WorkerTask>>,
    result_rx: Receiver<WorkerChunk>,
    handle: Option<JoinHandle<()>>,
}

impl PoolWorker {
    fn spawn() -> Self {
        let (task_tx, task_rx) = std::sync::mpsc::channel::<WorkerTask>();
        let (result_tx, result_rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            while let Ok(task) = task_rx.recv() {
                let WorkerTask {
                    program,
                    kernel,
                    spec,
                    args,
                    heap,
                    start,
                    successor,
                    squash,
                    plan,
                    budget,
                    detect,
                    granularity_log2,
                } = task;
                let chunk = run_worker_chunk(
                    &program,
                    kernel,
                    &spec,
                    &args,
                    &heap,
                    &start,
                    successor,
                    &squash,
                    &plan,
                    budget,
                    detect,
                    granularity_log2,
                );
                if result_tx.send(chunk).is_err() {
                    break;
                }
            }
        });
        PoolWorker {
            task_tx: Some(task_tx),
            result_rx,
            handle: Some(handle),
        }
    }

    fn send(&self, task: WorkerTask) -> Result<(), BackendError> {
        self.task_tx
            .as_ref()
            .expect("pool worker alive")
            .send(task)
            .map_err(|_| BackendError::Engine("pool worker thread died".to_string()))
    }

    fn recv(&self) -> Result<WorkerChunk, BackendError> {
        self.result_rx
            .recv()
            .map_err(|_| BackendError::Engine("pool worker thread died".to_string()))
    }
}

impl Drop for PoolWorker {
    fn drop(&mut self) {
        // Closing the task channel ends the worker's recv loop; then join.
        self.task_tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The pool's dedicated predictor thread: receives the previous invocation's
/// work distribution, answers with the memoization plan
/// ([`chunk_memo_plan`] — the centralized half of Algorithm 2). The caller
/// blocks for the round trip inside the timed window, so the centralized
/// step's wall-time is measured as part of the invocation.
#[derive(Debug)]
struct Planner {
    req_tx: Option<Sender<(Vec<u64>, usize)>>,
    plan_rx: Receiver<Vec<Vec<(u64, usize)>>>,
    handle: Option<JoinHandle<()>>,
}

impl Planner {
    fn spawn() -> Self {
        let (req_tx, req_rx) = std::sync::mpsc::channel::<(Vec<u64>, usize)>();
        let (plan_tx, plan_rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            while let Ok((last_work, threads)) = req_rx.recv() {
                if plan_tx.send(chunk_memo_plan(&last_work, threads)).is_err() {
                    break;
                }
            }
        });
        Planner {
            req_tx: Some(req_tx),
            plan_rx,
            handle: Some(handle),
        }
    }

    fn plan(
        &self,
        last_work: Vec<u64>,
        threads: usize,
    ) -> Result<Vec<Vec<(u64, usize)>>, BackendError> {
        self.req_tx
            .as_ref()
            .expect("planner alive")
            .send((last_work, threads))
            .map_err(|_| BackendError::Engine("predictor thread died".to_string()))?;
        self.plan_rx
            .recv()
            .map_err(|_| BackendError::Engine("predictor thread died".to_string()))
    }
}

impl Drop for Planner {
    fn drop(&mut self) {
        self.req_tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The persistent native runtime: `threads - 1` pre-spawned workers, their
/// reusable squash flags, and the dedicated predictor thread.
#[derive(Debug)]
struct WorkerPool {
    workers: Vec<PoolWorker>,
    squash: Vec<Arc<AtomicBool>>,
    planner: Planner,
}

impl WorkerPool {
    fn spawn(threads: usize) -> Self {
        let workers = (0..threads - 1).map(|_| PoolWorker::spawn()).collect();
        let squash = (0..threads - 1)
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        WorkerPool {
            workers,
            squash,
            planner: Planner::spawn(),
        }
    }

    /// Error-path cleanup: squash and drain every worker still marked
    /// outstanding in `tasked`, so a failed invocation leaves no stale
    /// results in the channels.
    fn abort(&self, tasked: &[bool]) {
        for (wi, &t) in tasked.iter().enumerate() {
            if t {
                self.squash[wi].store(true, Ordering::Release);
            }
        }
        for (wi, &t) in tasked.iter().enumerate() {
            if t {
                let _ = self.workers[wi].recv();
            }
        }
    }
}

impl NativeLoopBackend {
    /// Creates a backend running `threads` OS threads (one non-speculative
    /// main + `threads - 1` speculative workers).
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "Spice needs at least two threads");
        NativeLoopBackend {
            threads,
            step_budget: DEFAULT_STEP_BUDGET,
            loaded: None,
            pool: None,
            tracing: NativeTracing::default(),
        }
    }

    /// Overrides the per-thread interpreter step budget.
    #[must_use]
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = steps;
        self
    }

    /// Current chunk-boundary predictions (one row per worker), for tests
    /// and diagnostics.
    #[must_use]
    pub fn predictions(&self) -> Option<&[Vec<i64>]> {
        self.loaded.as_ref().map(|l| l.predictions.as_slice())
    }

    /// The centralized step's output for the most recent invocation,
    /// flattened to `(tid, threshold, row)` triples ordered by `sva` row —
    /// directly comparable with the simulator backend's reconstructed
    /// `Assignment` list. `None` before `load`, empty before the first
    /// invocation.
    #[must_use]
    pub fn last_plan(&self) -> Option<Vec<(usize, u64, usize)>> {
        let loaded = self.loaded.as_ref()?;
        let mut flat: Vec<(usize, u64, usize)> = loaded
            .last_plan
            .iter()
            .enumerate()
            .flat_map(|(tid, entries)| {
                entries
                    .iter()
                    .map(move |&(threshold, row)| (tid, threshold, row))
            })
            .collect();
        flat.sort_by_key(|&(_, _, row)| row);
        Some(flat)
    }

    /// Thread ids of the pre-spawned pool workers, in worker order — stable
    /// across invocations, which is how tests assert the pool really is
    /// persistent. `None` until the first invocation spawns the pool.
    #[must_use]
    pub fn worker_thread_ids(&self) -> Option<Vec<std::thread::ThreadId>> {
        let pool = self.pool.as_ref()?;
        Some(
            pool.workers
                .iter()
                .map(|w| w.handle.as_ref().expect("pool worker alive").thread().id())
                .collect(),
        )
    }
}

impl ExecutionBackend for NativeLoopBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn enable_trace(&mut self, capacity: usize) {
        if self.tracing.rec.is_none() {
            self.tracing.rec = Some(TraceRecorder::new(capacity));
        }
    }

    fn trace(&self) -> Option<&TraceRecorder> {
        self.tracing.rec.as_ref()
    }

    fn load(
        &mut self,
        program: Program,
        kernel: FuncId,
        options: LoadOptions,
    ) -> Result<(), BackendError> {
        let spec = derive_loop_spec(&program, kernel, options.loop_header)?;
        let mem = FlatMemory::for_program(&program, options.heap_words.max(1024));
        let width = spec.cursors.len();
        let mut last_work = Vec::new();
        if let Some(estimate) = options.work_estimate {
            last_work = vec![0; self.threads];
            last_work[0] = estimate;
        }
        let heap = Arc::new(SharedHeap::new(mem.words().len()));
        let decoded = Arc::new(DecodedProgram::new(&program));
        self.loaded = Some(Loaded {
            decoded,
            kernel,
            spec: Arc::new(spec),
            mem,
            heap,
            heap_dirty: true,
            predictions: vec![vec![0; width]; self.threads - 1],
            last_work,
            policy: options.conflict_policy,
            granularity_log2: options.conflict_granularity_log2,
            last_plan: Vec::new(),
        });
        Ok(())
    }

    fn mem(&self) -> &FlatMemory {
        &self.loaded.as_ref().expect("load() first").mem
    }

    fn mem_mut(&mut self) -> &mut FlatMemory {
        let loaded = self.loaded.as_mut().expect("load() first");
        // A driver may mutate the canonical image through this borrow, so
        // the persistent heap must be re-synced before the next invocation.
        loaded.heap_dirty = true;
        &mut loaded.mem
    }

    fn run_invocation(&mut self, args: &[i64]) -> Result<ExecutionReport, BackendError> {
        let budget = self.step_budget;
        let threads = self.threads;
        let workers = threads - 1;
        let loaded = self.loaded.as_mut().ok_or(BackendError::NotLoaded)?;
        let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(threads));
        let tracing = &mut self.tracing;
        let invocation = tracing.invocations;
        tracing.invocations += 1;
        tracing.emit(TraceEvent::InvocationBegin { index: invocation });

        // Mirror the canonical memory into the persistent shared heap only
        // when a driver actually touched the image since the last commit —
        // an unchanged image is reused as-is.
        if loaded.heap_dirty {
            // SAFETY: between invocations every pool worker is blocked on
            // its task channel; nothing touches the heap concurrently.
            unsafe { loaded.heap.overwrite(loaded.mem.words()) };
        }
        // The invocation is about to write the heap; until the
        // post-invocation commit copies it back, the canonical image is
        // stale. Arming the flag here (cleared only after a successful
        // commit) means every early error return leaves it set, so the next
        // invocation re-mirrors instead of executing on a half-written heap.
        loaded.heap_dirty = true;

        let detect = loaded.policy.detects();
        let granularity_log2 = loaded.granularity_log2;
        let predictions = loaded.predictions.clone();
        let program = Arc::clone(&loaded.decoded);
        let kernel = loaded.kernel;
        let spec = Arc::clone(&loaded.spec);
        let heap = Arc::clone(&loaded.heap);
        let alloc_base = loaded.mem.heap_next();
        for flag in &pool.squash {
            flag.store(false, Ordering::Release);
        }

        // The invocation's cost starts here and includes the centralized
        // predictor step, which runs on the pool's dedicated thread — its
        // wall-time is part of the measured runtime, not the driver's.
        let started = Instant::now();
        let memo_plan = pool.planner.plan(loaded.last_work.clone(), threads)?;
        loaded.last_plan = memo_plan.clone();

        // new_invocation: hand every predicted worker its task token; the
        // pre-spawned threads wake from their channel recv.
        let mut tasked = vec![false; workers];
        let mut chunk_ids: Vec<Option<u64>> = vec![None; workers];
        for wi in 0..workers {
            let start = predictions[wi].clone();
            if start.iter().all(|&v| v == 0) {
                continue;
            }
            let task = WorkerTask {
                program: Arc::clone(&program),
                kernel,
                spec: Arc::clone(&spec),
                args: args.to_vec(),
                heap: Arc::clone(&heap),
                start,
                successor: predictions.get(wi + 1).cloned(),
                squash: Arc::clone(&pool.squash[wi]),
                plan: memo_plan[wi + 1].clone(),
                budget,
                detect,
                granularity_log2,
            };
            if let Err(e) = pool.workers[wi].send(task) {
                // A worker already tasked this invocation must be squashed
                // and drained, or its stale result would desynchronize the
                // next invocation's commit loop.
                pool.abort(&tasked);
                return Err(e);
            }
            tasked[wi] = true;
            if tracing.on() {
                let id = tracing.chunk_next;
                tracing.chunk_next += 1;
                chunk_ids[wi] = Some(id);
                let at = tracing.next_at();
                tracing.emit(TraceEvent::ChunkBegin {
                    at,
                    core: (wi + 1) as u32,
                    chunk: id,
                });
            }
        }
        if tracing.on() {
            let chunks = tasked.iter().filter(|&&t| t).count() as u64;
            let at = tracing.next_at();
            tracing.emit(TraceEvent::PredictorPlan { at, chunks });
        }

        // Main (non-speculative) chunk on the calling thread, stopping at
        // the first worker's predicted boundary.
        let boundary = predictions
            .first()
            .filter(|p| workers > 0 && p.iter().any(|&v| v != 0))
            .cloned();
        let mut port = DirectPort {
            heap: &heap,
            alloc_next: alloc_base,
            write_log: detect.then(|| AccessSet::with_granularity(granularity_log2)),
        };
        let mut main = match run_main_chunk(
            &program,
            kernel,
            &spec,
            args,
            &mut port,
            boundary,
            &memo_plan[0],
            budget,
        ) {
            Ok(m) => m,
            Err(e) => {
                pool.abort(&tasked);
                return Err(e);
            }
        };

        // Ordered validation and commit (paper §3: the main thread is the
        // only committer, one chunk at a time, in thread order). Under
        // ConflictPolicy::Detect the union of the main chunk's and every
        // committed chunk's write addresses is carried along, and each
        // chunk's load set is intersected against it before acceptance —
        // the software form of the paper's hardware conflict detection.
        // After the main chunk, validation needs no further port access,
        // so recording stops here (the post-squash resume writes are
        // never checked against anything).
        let mut earlier_writes = port.write_log.take().unwrap_or_default();
        // Word-exact writer attribution for squash forensics: committed
        // worker chunks publish exact (addr, value) write lists, so a
        // violating address can be traced back to the chunk that wrote it.
        // The main chunk's stores are only logged at grain granularity; an
        // address with no recorded worker writer is therefore attributed to
        // the main chunk (core 0, no speculative chunk id).
        let mut writer_by_word: Option<HashMap<i64, (u32, Option<u64>)>> =
            (detect && tracing.on()).then(HashMap::new);
        let mut committed = 0usize;
        let mut still_valid = main.matched;
        let mut end_reached = false;
        let mut resume_finals: Option<Vec<(Reg, i64)>> = None;
        let mut reports = Vec::with_capacity(workers);
        let mut work = vec![main.iterations];
        let mut memos = std::mem::take(&mut main.memos);
        // Registers whose resume values come from reduction combining,
        // not from copying the last committed chunk's state.
        let combined_regs: Vec<Reg> = spec
            .reductions
            .iter()
            .flat_map(|r| std::iter::once(r.reg).chain(r.payloads.iter().copied()))
            .collect();

        for wi in 0..workers {
            if !tasked[wi] {
                reports.push(WorkerReport {
                    committed: false,
                    cause: Some(MisspeculationCause::NoPrediction),
                    work: 0,
                });
                work.push(0);
                still_valid = false;
                continue;
            }
            if !still_valid || end_reached {
                // The chain is broken: flag every not-yet-joined worker at
                // once, so they all stop at their next poll instead of
                // winding down serially as the join loop reaches them.
                for (later, flag) in pool.squash.iter().enumerate().skip(wi) {
                    if tasked[later] {
                        flag.store(true, Ordering::Release);
                    }
                }
            }
            let result = match pool.workers[wi].recv() {
                Ok(r) => r,
                Err(e) => {
                    tasked[wi] = false;
                    pool.abort(&tasked);
                    return Err(e);
                }
            };
            tasked[wi] = false;
            // RAW check: did this chunk read a word an earlier chunk
            // wrote? Only meaningful while the chain is intact — once a
            // predecessor failed, the chunk is squashed regardless.
            let conflict = if detect && still_valid && !end_reached {
                result.reads.first_overlap(&earlier_writes)
            } else {
                None
            };
            if tracing.on() {
                let at = tracing.next_at();
                tracing.emit(TraceEvent::ChunkValidate {
                    at,
                    core: (wi + 1) as u32,
                    chunk: chunk_ids[wi],
                    conflict,
                });
            }
            let valid = still_valid
                && !end_reached
                && result.fault.is_none()
                && conflict.is_none()
                && (result.matched || result.reached_exit);
            if valid {
                for (addr, value) in &result.writes {
                    // SAFETY: ordered commit — one worker at a time, by
                    // the main thread, after every worker stopped writing
                    // (`SpecPort` bounds-checks each buffered address).
                    unsafe { heap.write(*addr, *value) };
                }
                if detect {
                    earlier_writes.extend(result.writes.iter().map(|(a, _)| *a));
                }
                if let Some(map) = writer_by_word.as_mut() {
                    for &(addr, _) in &result.writes {
                        map.insert(addr, ((wi + 1) as u32, chunk_ids[wi]));
                    }
                }
                if tracing.on() {
                    let at = tracing.next_at();
                    tracing.emit(TraceEvent::ChunkCommit {
                        at,
                        core: (wi + 1) as u32,
                        chunk: chunk_ids[wi],
                        writes: result.writes.len() as u64,
                    });
                }
                combine_reductions(&spec, &mut main.state, &result.finals);
                memos.extend(result.memos.iter().cloned());
                work.push(result.iterations);
                committed += 1;
                end_reached = result.reached_exit;
                still_valid = result.matched || result.reached_exit;
                resume_finals = Some(result.finals);
                reports.push(WorkerReport {
                    committed: true,
                    cause: None,
                    work: result.iterations,
                });
            } else {
                let cause = if !still_valid || end_reached {
                    MisspeculationCause::SquashCascade
                } else if let Some(f) = result.fault {
                    f
                } else if let Some(addr) = conflict {
                    MisspeculationCause::DependenceViolation { addr }
                } else {
                    MisspeculationCause::StalePrediction
                };
                if tracing.on() {
                    // RAW-chain forensics: the violating grain base address,
                    // plus writer attribution from the word-exact commit
                    // log. Native read sets are only kept at the configured
                    // granularity, so the shared word is certain only with
                    // exact (word) grains, and the word-vs-grain
                    // false-conflict count is not measurable here — the
                    // simulator's word shadow sets cover that side.
                    let forensics = match cause {
                        MisspeculationCause::DependenceViolation { addr } => {
                            let span = 1i64 << granularity_log2;
                            let writer = writer_by_word.as_ref().and_then(|map| {
                                (addr..addr + span).find_map(|w| map.get(&w).copied())
                            });
                            let (writer_core, writer_chunk) = match writer {
                                Some((core, chunk)) => (Some(core), chunk),
                                None => (Some(0), None),
                            };
                            Some(SquashForensics {
                                addr,
                                word_addr: (granularity_log2 == 0).then_some(addr),
                                writer_core,
                                writer_chunk,
                                writer_site: None,
                                writer_at: None,
                                reader_site: None,
                                false_conflicts: 0,
                                granularity_log2,
                            })
                        }
                        _ => None,
                    };
                    let at = tracing.next_at();
                    tracing.emit(TraceEvent::ChunkSquash {
                        at,
                        core: (wi + 1) as u32,
                        chunk: chunk_ids[wi],
                        cause,
                        forensics,
                    });
                }
                still_valid = false;
                work.push(0);
                reports.push(WorkerReport {
                    committed: false,
                    cause: Some(cause),
                    work: result.iterations,
                });
            }
        }

        // Resume the main thread: on success from the terminal state of
        // the last committed chunk; after a squash from the first
        // non-validated boundary (which the last valid chunk reached
        // itself, so it is a genuine traversal point).
        let return_value = if let Some(v) = main.finished {
            v
        } else {
            if let Some(finals) = &resume_finals {
                for (reg, value) in finals {
                    if !combined_regs.contains(reg) {
                        main.state.set_reg(*reg, *value);
                    }
                }
            }
            // Resume through the same port, so allocations made during
            // the main chunk are not handed out a second time.
            let (value, extra_iterations) =
                finish_main(&program, &spec, &mut main.state, &mut port, budget)?;
            work[0] += extra_iterations;
            value
        };
        let elapsed = started.elapsed();

        // Commit: publish the invocation's memory effects and predictor
        // feedback into the canonical image. The heap and the image are
        // identical afterwards, so the next invocation skips the mirror
        // unless a driver mutates the image in between.
        let alloc_next = port.alloc_next;
        drop(port);
        // SAFETY: every worker has reported; single-threaded phase.
        unsafe { heap.snapshot_into(loaded.mem.words_mut()) };
        loaded.heap_dirty = false;
        loaded.mem.set_heap_next(alloc_next);
        for (row, cursors) in memos {
            if row < loaded.predictions.len() {
                loaded.predictions[row] = cursors;
            }
        }
        loaded.last_work = work.clone();

        if tracing.on() {
            let at = tracing.next_at();
            tracing.emit(TraceEvent::PredictorFeedback {
                at,
                committed: committed as u64,
                squashed: (workers - committed) as u64,
            });
        }

        Ok(ExecutionReport {
            backend: "native",
            cost: ExecutionCost::WallNanos(elapsed.as_nanos()),
            return_value,
            misspeculated: committed < workers,
            committed_chunks: committed,
            squashed_chunks: workers - committed,
            workers: reports,
            work_per_thread: work,
        })
    }
}

/// A worker's view of its chunk after it stopped.
struct WorkerChunk {
    /// The chunk ended on its successor's predicted boundary.
    matched: bool,
    /// The chunk ran the loop to its natural exit.
    reached_exit: bool,
    /// Why the chunk is invalid, if it faulted.
    fault: Option<MisspeculationCause>,
    iterations: u64,
    memos: Vec<(usize, Vec<i64>)>,
    writes: Vec<(i64, i64)>,
    /// Load set of the chunk (addresses read from the shared heap, not
    /// store-forwarded) — empty under `ConflictPolicy::AssumeIndependent`.
    reads: AccessSet,
    /// Final values of the spec-relevant registers (cursors, reductions,
    /// payloads, live-outs) at the stop point.
    finals: Vec<(Reg, i64)>,
}

/// The main thread's chunk: its paused (or finished) interpreter state.
struct MainChunk {
    state: ThreadState,
    /// Set when the function returned before reaching the boundary.
    finished: Option<Option<i64>>,
    matched: bool,
    iterations: u64,
    memos: Vec<(usize, Vec<i64>)>,
}

/// Non-speculative port: reads and writes go straight to the shared heap
/// (the main thread is the only direct writer during an invocation). While
/// `write_log` is set, every store address is recorded — the main chunk's
/// write set, the base the conflict validation intersects worker load sets
/// against.
struct DirectPort<'h> {
    heap: &'h SharedHeap,
    alloc_next: i64,
    write_log: Option<AccessSet>,
}

impl MemPort for DirectPort<'_> {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        self.heap
            .read(addr)
            .ok_or(TrapKind::OutOfBoundsAccess { addr })
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        if addr < 0 || addr as usize >= self.heap.len() {
            return Err(TrapKind::OutOfBoundsAccess { addr });
        }
        if let Some(log) = &mut self.write_log {
            log.insert(addr);
        }
        // SAFETY: Spice protocol — the main thread is the single
        // non-speculative writer while workers only read or buffer.
        unsafe { self.heap.write(addr, value) };
        Ok(())
    }

    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind> {
        if words < 0 {
            return Err(TrapKind::OutOfMemory);
        }
        let base = self.alloc_next;
        let end = base.checked_add(words).ok_or(TrapKind::OutOfMemory)?;
        if end as usize > self.heap.len() {
            return Err(TrapKind::OutOfMemory);
        }
        self.alloc_next = end;
        Ok(base)
    }
}

/// Speculative port: reads prefer the thread's own buffered writes, writes
/// are buffered (bounds-checked now so the later commit cannot fault).
struct SpecPort<'h> {
    view: SpecView<'h>,
    heap_len: usize,
}

impl MemPort for SpecPort<'_> {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        self.view
            .read_tracked(addr)
            .ok_or(TrapKind::OutOfBoundsAccess { addr })
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        if addr < 0 || addr as usize >= self.heap_len {
            return Err(TrapKind::OutOfBoundsAccess { addr });
        }
        self.view.write(addr, value);
        Ok(())
    }

    fn alloc(&mut self, _words: i64) -> Result<i64, TrapKind> {
        // Speculative allocation is unsupported; the chunk squashes.
        Err(TrapKind::OutOfMemory)
    }
}

/// System port for untransformed kernels: they contain no channel or
/// speculation intrinsics, so everything is inert. A `Recv` (which would
/// block forever) surfaces as [`StepEvent::Blocked`] and the caller treats
/// it as a fault.
struct NopSys;

impl SysPort for NopSys {
    fn send(&mut self, _chan: i64, _value: i64) {}
    fn try_recv(&mut self, _chan: i64) -> Option<i64> {
        None
    }
    fn resteer(&mut self, _core: i64, _target: BlockId) {}
}

/// Steps `state` until it next *arrives* at block `block` **of function
/// `func`** (enters it through a branch). The function qualification
/// matters: block ids are function-local, so a kernel whose entry phase
/// calls helper functions (e.g. `mcf_app`'s arc scan and relink) would
/// otherwise "arrive" at a callee block that merely shares the header's
/// numeric id. Returns `Ok(None)` on arrival, `Ok(Some(v))` if the function
/// finished first, `Err` on trap/block/budget-exhaustion.
fn step_to_block_arrival(
    program: &DecodedProgram,
    state: &mut ThreadState,
    mem: &mut dyn MemPort,
    sys: &mut dyn SysPort,
    func: FuncId,
    block: BlockId,
    steps_left: &mut u64,
) -> Result<Option<Option<i64>>, TrapKind> {
    loop {
        if *steps_left == 0 {
            return Err(TrapKind::OutOfFuel);
        }
        *steps_left -= 1;
        match state.step(program, mem, sys)? {
            StepEvent::Executed(info) => {
                if info.class() == InstClass::Branch
                    && state.current_block() == block
                    && state.current_func() == func
                {
                    return Ok(None);
                }
            }
            StepEvent::Finished(v) => return Ok(Some(v)),
            StepEvent::Halted => return Ok(Some(None)),
            StepEvent::Blocked => return Err(TrapKind::UnsupportedIntrinsic),
        }
    }
}

/// Snapshot of the spec-relevant registers of a stopped chunk. Meaningless
/// (and not even addressable — register files are function-local) unless the
/// thread's innermost frame is the kernel function, as it is at every
/// boundary; a chunk that faulted inside a callee reports no finals.
fn snapshot_finals(spec: &SpiceLoopSpec, state: &ThreadState) -> Vec<(Reg, i64)> {
    if state.current_func() != spec.func {
        return Vec::new();
    }
    let mut regs: Vec<Reg> = spec.cursors.clone();
    regs.extend(spec.live_outs.iter().copied());
    for r in &spec.reductions {
        regs.push(r.reg);
        regs.extend(r.payloads.iter().copied());
    }
    regs.sort_unstable();
    regs.dedup();
    regs.into_iter().map(|r| (r, state.reg(r))).collect()
}

fn cursor_values(spec: &SpiceLoopSpec, state: &ThreadState) -> Vec<i64> {
    spec.cursors.iter().map(|&r| state.reg(r)).collect()
}

/// Runs one speculative worker chunk: teleport to the header with the
/// predicted cursors, iterate until the successor's boundary, the loop's
/// natural exit, a fault, or a squash.
#[allow(clippy::too_many_arguments)]
fn run_worker_chunk(
    program: &DecodedProgram,
    kernel: FuncId,
    spec: &SpiceLoopSpec,
    args: &[i64],
    heap: &SharedHeap,
    start: &[i64],
    successor: Option<Vec<i64>>,
    squash: &AtomicBool,
    memo_plan: &[(u64, usize)],
    budget: u64,
    track_reads: bool,
    granularity_log2: u8,
) -> WorkerChunk {
    let mut state = ThreadState::new(program, kernel, args);
    let mut port = SpecPort {
        view: SpecView::with_read_tracking(heap, track_reads)
            .with_conflict_granularity(granularity_log2),
        heap_len: heap.len(),
    };
    let mut sys = NopSys;
    let mut steps = budget;
    let fault =
        |cause: MisspeculationCause, iterations, memos, port: SpecPort<'_>, state: &ThreadState| {
            let (writes, reads) = port.view.into_parts();
            WorkerChunk {
                matched: false,
                reached_exit: false,
                fault: Some(cause),
                iterations,
                memos,
                writes,
                reads,
                finals: snapshot_finals(spec, state),
            }
        };

    // Reach the loop header once through the function's own entry code
    // (binds invariant live-ins), then teleport into the chunk.
    match step_to_block_arrival(
        program,
        &mut state,
        &mut port,
        &mut sys,
        spec.func,
        spec.header,
        &mut steps,
    ) {
        Ok(None) => {}
        Ok(Some(_)) | Err(_) => {
            return fault(
                MisspeculationCause::Fault(TrapKind::UnsupportedIntrinsic),
                0,
                Vec::new(),
                port,
                &state,
            );
        }
    }
    for (reg, value) in spec.cursors.iter().zip(start) {
        state.set_reg(*reg, *value);
    }
    for r in &spec.reductions {
        state.set_reg(r.reg, r.kind.identity());
    }
    // Entry/preheader code belongs to the main thread's execution; any stores
    // it made were buffered above only to keep this thread's reads coherent.
    // Drop them so a validated chunk commits loop-body stores exclusively —
    // otherwise every worker would replay pre-loop stores over values the
    // main thread wrote later in the invocation. The *reads* stay: the entry
    // replay raced the main chunk, so an entry load of a word the loop
    // writes (e.g. an invariant register bound from a global the body
    // stores to) is a dependence the conflict validation must observe.
    port.view.drop_writes();

    let successor_active = successor
        .as_ref()
        .is_some_and(|s| s.iter().any(|&v| v != 0));
    let mut iterations: u64 = 0;
    let mut memo_idx = 0usize;
    let mut memos = Vec::new();
    let mut since_poll: u64 = 0;
    loop {
        // Boundary checks, on every header arrival.
        let cur = cursor_values(spec, &state);
        if successor_active {
            let succ = successor.as_ref().expect("active successor");
            if cur == *succ && (iterations > 0 || start == succ.as_slice()) {
                let (writes, reads) = port.view.into_parts();
                return WorkerChunk {
                    matched: true,
                    reached_exit: false,
                    fault: None,
                    iterations,
                    memos,
                    writes,
                    reads,
                    finals: snapshot_finals(spec, &state),
                };
            }
        }
        if squash.load(Ordering::Acquire) {
            return fault(
                MisspeculationCause::SquashCascade,
                iterations,
                memos,
                port,
                &state,
            );
        }
        if memo_idx < memo_plan.len() && iterations >= memo_plan[memo_idx].0 {
            // Never memoize the exit sentinel (all-zero cursors): a chunk
            // cannot start from "done", and an all-zero row doubles as the
            // no-prediction marker. Skipping keeps the row's previous value,
            // like the kernel-based runtime, which stops before memoizing 0.
            if cur.iter().any(|&v| v != 0) {
                memos.push((memo_plan[memo_idx].1, cur));
            }
            memo_idx += 1;
        }

        // One iteration: step until the next header arrival (or the exit).
        loop {
            if steps == 0 {
                return fault(
                    MisspeculationCause::Fault(TrapKind::OutOfFuel),
                    iterations,
                    memos,
                    port,
                    &state,
                );
            }
            steps -= 1;
            since_poll += 1;
            if since_poll >= SQUASH_POLL_INTERVAL {
                since_poll = 0;
                if squash.load(Ordering::Acquire) {
                    return fault(
                        MisspeculationCause::SquashCascade,
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
            }
            match state.step(program, &mut port, &mut sys) {
                Ok(StepEvent::Executed(info)) => {
                    if info.class() == InstClass::Branch && state.current_func() == spec.func {
                        if state.current_block() == spec.exit_block {
                            // The loop genuinely ended inside this chunk; the
                            // main thread executes the exit code itself.
                            // `iterations` already counts every completed
                            // (header-re-arriving) iteration — the final
                            // header evaluation that took the exit edge is
                            // not an iteration, so it is not counted (the
                            // sim backend's latch-side work bump makes the
                            // same call; the counters must agree).
                            let (writes, reads) = port.view.into_parts();
                            return WorkerChunk {
                                matched: false,
                                reached_exit: true,
                                fault: None,
                                iterations,
                                memos,
                                writes,
                                reads,
                                finals: snapshot_finals(spec, &state),
                            };
                        }
                        if state.current_block() == spec.header {
                            iterations += 1;
                            break;
                        }
                    }
                }
                Ok(StepEvent::Finished(_)) | Ok(StepEvent::Halted) => {
                    return fault(
                        MisspeculationCause::Fault(TrapKind::UnsupportedIntrinsic),
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
                Ok(StepEvent::Blocked) => {
                    return fault(
                        MisspeculationCause::Fault(TrapKind::UnsupportedIntrinsic),
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
                Err(trap) => {
                    return fault(
                        MisspeculationCause::Fault(trap),
                        iterations,
                        memos,
                        port,
                        &state,
                    );
                }
            }
        }
    }
}

/// Runs the main thread's chunk up to the first worker's predicted boundary
/// (or to completion when there is none / it is never reached).
#[allow(clippy::too_many_arguments)]
fn run_main_chunk(
    program: &DecodedProgram,
    kernel: FuncId,
    spec: &SpiceLoopSpec,
    args: &[i64],
    port: &mut DirectPort<'_>,
    boundary: Option<Vec<i64>>,
    memo_plan: &[(u64, usize)],
    budget: u64,
) -> Result<MainChunk, BackendError> {
    let mut state = ThreadState::new(program, kernel, args);
    let mut sys = NopSys;
    let mut steps = budget;

    match step_to_block_arrival(
        program,
        &mut state,
        port,
        &mut sys,
        spec.func,
        spec.header,
        &mut steps,
    ) {
        Ok(None) => {}
        Ok(Some(v)) => {
            return Ok(MainChunk {
                state,
                finished: Some(v),
                matched: false,
                iterations: 0,
                memos: Vec::new(),
            })
        }
        Err(trap) => return Err(engine_trap(trap)),
    }

    let start = cursor_values(spec, &state);
    let boundary_active = boundary.as_ref().is_some_and(|b| b.iter().any(|&v| v != 0));
    let mut iterations: u64 = 0;
    let mut memo_idx = 0usize;
    let mut memos = Vec::new();
    loop {
        let cur = cursor_values(spec, &state);
        if boundary_active {
            let b = boundary.as_ref().expect("active boundary");
            if cur == *b && (iterations > 0 || start == *b) {
                return Ok(MainChunk {
                    state,
                    finished: None,
                    matched: true,
                    iterations,
                    memos,
                });
            }
        }
        if memo_idx < memo_plan.len() && iterations >= memo_plan[memo_idx].0 {
            // See run_worker_chunk: the all-zero exit sentinel is never a
            // valid chunk start, so it is never memoized.
            if cur.iter().any(|&v| v != 0) {
                memos.push((memo_plan[memo_idx].1, cur));
            }
            memo_idx += 1;
        }
        match step_to_block_arrival(
            program,
            &mut state,
            port,
            &mut sys,
            spec.func,
            spec.header,
            &mut steps,
        ) {
            Ok(None) => iterations += 1,
            Ok(Some(v)) => {
                return Ok(MainChunk {
                    state,
                    finished: Some(v),
                    matched: false,
                    iterations,
                    memos,
                })
            }
            Err(trap) => return Err(engine_trap(trap)),
        }
    }
}

/// Runs the (already repositioned) main thread to completion, counting the
/// additional loop iterations it executes.
fn finish_main(
    program: &DecodedProgram,
    spec: &SpiceLoopSpec,
    state: &mut ThreadState,
    port: &mut DirectPort<'_>,
    budget: u64,
) -> Result<(Option<i64>, u64), BackendError> {
    let mut sys = NopSys;
    let mut steps = budget;
    let mut iterations: u64 = 0;
    loop {
        if steps == 0 {
            return Err(engine_trap(TrapKind::OutOfFuel));
        }
        steps -= 1;
        match state.step(program, port, &mut sys) {
            Ok(StepEvent::Executed(info)) => {
                if info.class() == InstClass::Branch
                    && state.current_block() == spec.header
                    && state.current_func() == spec.func
                {
                    iterations += 1;
                }
            }
            Ok(StepEvent::Finished(v)) => return Ok((v, iterations)),
            Ok(StepEvent::Halted) => return Ok((None, iterations)),
            Ok(StepEvent::Blocked) => return Err(engine_trap(TrapKind::UnsupportedIntrinsic)),
            Err(trap) => return Err(engine_trap(trap)),
        }
    }
}

fn engine_trap(trap: TrapKind) -> BackendError {
    BackendError::Engine(format!("main thread trapped: {trap}"))
}

/// Folds a committed chunk's reduction accumulators (and payloads) into the
/// main thread's registers, in thread order.
fn combine_reductions(spec: &SpiceLoopSpec, main: &mut ThreadState, finals: &[(Reg, i64)]) {
    let lookup = |reg: Reg| finals.iter().find(|(r, _)| *r == reg).map(|(_, v)| *v);
    for red in &spec.reductions {
        let Some(theirs) = lookup(red.reg) else {
            continue;
        };
        let ours = main.reg(red.reg);
        match red.kind {
            ReductionKind::Min => {
                // Strict comparison keeps the earliest chunk's value on ties,
                // matching the sequential first-minimum semantics.
                if theirs < ours {
                    main.set_reg(red.reg, theirs);
                    for &p in &red.payloads {
                        if let Some(v) = lookup(p) {
                            main.set_reg(p, v);
                        }
                    }
                }
            }
            ReductionKind::Max => {
                if theirs > ours {
                    main.set_reg(red.reg, theirs);
                    for &p in &red.payloads {
                        if let Some(v) = lookup(p) {
                            main.set_reg(p, v);
                        }
                    }
                }
            }
            ReductionKind::Binop(op) => {
                if let Ok(v) = op.eval(ours, theirs) {
                    main.set_reg(red.reg, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::{BinOp, Operand};

    /// The canonical list-minimum loop with an argmin payload and a store in
    /// the exit block, over `(weight, next)` node pairs.
    fn list_min_program(capacity: i64) -> (Program, FuncId, i64, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let out = program.add_global("out", 1);
        let mut b = FunctionBuilder::new("list_min");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let wm = b.copy(i64::MAX);
        let cm = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let nw = b.select(better, w, wm);
        b.copy_into(wm, nw);
        let nc = b.select(better, c, cm);
        b.copy_into(cm, nc);
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out, 0);
        b.ret(Some(Operand::Reg(wm)));
        let f = program.add_func(b.finish());
        (program, f, nodes, out)
    }

    fn write_list(mem: &mut FlatMemory, base: i64, weights: &[i64]) -> i64 {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + 2 * i as i64;
            let next = if i + 1 < weights.len() { addr + 2 } else { 0 };
            mem.write(addr, *w).unwrap();
            mem.write(addr + 1, next).unwrap();
        }
        base
    }

    #[test]
    fn native_backend_runs_list_min_and_learns_boundaries() {
        let weights: Vec<i64> = (0..400).map(|i| ((i * 37) % 211) + 5).collect();
        let (program, f, nodes, out) = list_min_program(weights.len() as i64 + 4);
        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        let expected = *weights.iter().min().unwrap();

        let mut saw_parallel = false;
        for inv in 0..4 {
            let report = backend.run_invocation(&[head]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
            assert_eq!(report.backend, "native");
            // The exit-block store committed through the direct port.
            let argmin = backend.mem().read(out).unwrap();
            assert_eq!(backend.mem().read(argmin).unwrap(), expected);
            if report.committed_chunks == 3 {
                saw_parallel = true;
                assert!(!report.misspeculated);
                let active = report.work_per_thread.iter().filter(|&&w| w > 0).count();
                assert!(active >= 3, "work: {:?}", report.work_per_thread);
            }
        }
        assert!(saw_parallel, "chunk predictions never converged");
    }

    #[test]
    fn stale_native_predictions_squash_but_stay_correct() {
        let weights: Vec<i64> = (0..300).map(|i| 1000 - i).collect();
        let (program, f, nodes, _) = list_min_program(weights.len() as i64 + 4);
        let mut backend = NativeLoopBackend::new(3);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        backend.run_invocation(&[head]).unwrap();
        backend.run_invocation(&[head]).unwrap();

        // Rebuild a shorter list skipping every other node: many memoized
        // cursors no longer appear in the traversal.
        let shorter: Vec<i64> = weights.iter().copied().step_by(2).collect();
        for w in backend.mem_mut().words_mut().iter_mut() {
            *w = 0;
        }
        let head2 = {
            let mem = backend.mem_mut();
            for (i, w) in shorter.iter().enumerate() {
                let addr = nodes + 4 * i as i64;
                let next = if i + 1 < shorter.len() { addr + 4 } else { 0 };
                mem.write(addr, *w).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
            nodes
        };
        let out = backend.run_invocation(&[head2]).unwrap();
        assert_eq!(out.return_value, Some(*shorter.iter().min().unwrap()));
        // Re-learning: after another invocation the new boundaries hold.
        let out2 = backend.run_invocation(&[head2]).unwrap();
        assert_eq!(out2.return_value, Some(*shorter.iter().min().unwrap()));
    }

    /// A list walk carrying a genuine cross-chunk RAW dependence: visiting
    /// node `i` stores `value(i) + 1` into node `i+1`'s value word, which the
    /// next iteration then loads. Chunked execution reads stale values unless
    /// the conflict subsystem squashes, so correctness of the result proves
    /// detection and recovery work.
    fn chained_increment_program(capacity: i64) -> (Program, FuncId, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let mut b = FunctionBuilder::new("chained_increment");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let poke = b.new_block();
        let advance = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 0);
        let s = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s);
        let n = b.load(c, 1);
        let has_next = b.binop(BinOp::Ne, n, 0i64);
        b.cond_br(has_next, poke, advance);
        b.switch_to(poke);
        let bumped = b.binop(BinOp::Add, v, 1i64);
        b.store(bumped, n, 0);
        b.br(advance);
        b.switch_to(advance);
        b.copy_into(c, n);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = program.add_func(b.finish());
        (program, f, nodes)
    }

    #[test]
    fn cross_chunk_raw_dependence_is_squashed_and_recovered() {
        let n: i64 = 200;
        let v0: i64 = 50;
        let (program, f, nodes) = chained_increment_program(n + 4);
        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(program, f, LoadOptions::new(4096, Some(n as u64)))
            .unwrap();
        {
            let mem = backend.mem_mut();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, if i == 0 { v0 } else { 0 }).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        // Sequentially: value(i) becomes v0 + i before it is read.
        let expected = n * v0 + n * (n - 1) / 2;

        let mut saw_violation = false;
        for inv in 0..5 {
            let report = backend.run_invocation(&[nodes]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
            for i in 1..n {
                assert_eq!(
                    backend.mem().read(nodes + 2 * i).unwrap(),
                    v0 + i,
                    "node {i} potential after invocation {inv}"
                );
            }
            if report
                .misspeculation_causes()
                .iter()
                .any(|c| matches!(c, MisspeculationCause::DependenceViolation { .. }))
            {
                saw_violation = true;
                assert!(report.misspeculated);
                assert!(report.squashed_chunks > 0);
            }
        }
        assert!(
            saw_violation,
            "speculative chunks never tripped the conflict detector"
        );
    }

    /// The native backend mirrors the simulator's chunk-lifecycle trace:
    /// every tasked chunk opens with `ChunkBegin` and resolves through
    /// `ChunkValidate` into exactly one `ChunkCommit` or `ChunkSquash`, and a
    /// dependence-violation squash carries RAW forensics naming the
    /// violating address and a writer.
    #[test]
    fn native_trace_mirrors_chunk_lifecycle_with_forensics() {
        let n: i64 = 200;
        let v0: i64 = 50;
        let (program, kernel, nodes) = chained_increment_program(n + 4);
        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(program, kernel, LoadOptions::new(4096, Some(n as u64)))
            .unwrap();
        {
            let mem = backend.mem_mut();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, if i == 0 { v0 } else { 0 }).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        backend.enable_trace(1 << 12);
        for _ in 0..5 {
            backend.run_invocation(&[nodes]).unwrap();
        }

        let trace = backend.trace().expect("trace enabled");
        let events: Vec<&TraceEvent> = trace.events().collect();

        // Five invocation markers, indexed in issue order.
        let indices: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::InvocationBegin { index } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);

        // The native `at` coordinate is a strictly monotone sequence.
        let ats: Vec<u64> = events
            .iter()
            .filter(|e| !matches!(e, TraceEvent::InvocationBegin { .. }))
            .map(|e| e.at())
            .collect();
        assert!(ats.windows(2).all(|w| w[0] < w[1]), "ats not monotone");

        // Chunk ids are unique across invocations and every begun chunk is
        // resolved by exactly one commit or squash.
        let begun: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ChunkBegin { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .collect();
        assert!(!begun.is_empty(), "no chunks were tasked");
        assert!(begun.windows(2).all(|w| w[0] < w[1]), "ids not monotone");
        let mut resolved: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ChunkCommit { chunk, .. } | TraceEvent::ChunkSquash { chunk, .. } => {
                    *chunk
                }
                _ => None,
            })
            .collect();
        resolved.sort_unstable();
        assert_eq!(resolved, begun);
        let validated = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ChunkValidate { .. }))
            .count();
        assert_eq!(validated, begun.len());

        // One plan and one feedback marker per invocation.
        let plans = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PredictorPlan { .. }))
            .count();
        let feedbacks = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PredictorFeedback { .. }))
            .count();
        assert_eq!(plans, 5);
        assert_eq!(feedbacks, 5);

        // The workload's genuine RAW violation is mirrored with forensics:
        // the violating address lies in the node array, and at the default
        // exact granularity the shared word is certain.
        let squash = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::ChunkSquash {
                    cause: MisspeculationCause::DependenceViolation { addr },
                    forensics,
                    ..
                } => Some((*addr, forensics.as_ref())),
                _ => None,
            })
            .expect("no dependence-violation squash in trace");
        let (addr, fx) = squash;
        let fx = fx.expect("dependence violations carry forensics");
        assert_eq!(fx.addr, addr);
        assert!(addr >= nodes && addr < nodes + 2 * (n + 4), "addr {addr}");
        assert_eq!(fx.granularity_log2, 0);
        assert_eq!(fx.word_addr, Some(addr));
        assert!(fx.writer_core.is_some());

        // The recorder's lifetime squash counter agrees with the events.
        let squashes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ChunkSquash { .. }))
            .count() as u64;
        assert_eq!(trace.squashes(), squashes);
    }

    /// Regression: the loop's *entry code* loads a global that the loop body
    /// stores to. The invariant register bound by a worker's entry replay
    /// races the main chunk's stores, so the replay's reads must stay in the
    /// chunk's load set — dropping them with the replayed writes would let a
    /// chunk computed from a mid-loop value of `g` commit.
    #[test]
    fn entry_code_reads_participate_in_conflict_detection() {
        let n: i64 = 160;
        let mut program = Program::new();
        let nodes = program.add_global("nodes", (n + 4) * 2);
        let g = program.add_global("g", 1);
        let mut b = FunctionBuilder::new("entry_bound");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let base = b.load(g, 0); // entry: bind the invariant from memory
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 0);
        let bv = b.binop(BinOp::Add, base, v);
        let s = b.binop(BinOp::Add, sum, bv);
        b.copy_into(sum, s);
        b.store(bv, g, 0); // the body overwrites what the entry read
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = program.add_func(b.finish());

        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(program, f, LoadOptions::new(4096, Some(n as u64)))
            .unwrap();
        {
            let mem = backend.mem_mut();
            mem.write(g, 1000).unwrap();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, i + 1).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        for inv in 0..5 {
            // Host mirror: base is g's value at entry, fixed per invocation.
            let base = backend.mem().read(g).unwrap();
            let expected: i64 = (1..=n).map(|v| base + v).sum();
            let report = backend.run_invocation(&[nodes]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
            assert_eq!(backend.mem().read(g).unwrap(), base + n, "invocation {inv}");
        }
    }

    #[test]
    fn assume_independent_policy_skips_detection() {
        // Same conflict-carrying loop, detection off: results may be stale,
        // but no DependenceViolation may ever be reported. (This documents
        // that AssumeIndependent really is the caller's assertion.)
        let n: i64 = 120;
        let (program, f, nodes) = chained_increment_program(n + 4);
        let mut backend = NativeLoopBackend::new(3);
        let options = LoadOptions::new(4096, Some(n as u64))
            .with_conflict_policy(spice_ir::exec::ConflictPolicy::AssumeIndependent);
        backend.load(program, f, options).unwrap();
        {
            let mem = backend.mem_mut();
            for i in 0..n {
                let addr = nodes + 2 * i;
                let next = if i + 1 < n { addr + 2 } else { 0 };
                mem.write(addr, 1).unwrap();
                mem.write(addr + 1, next).unwrap();
            }
        }
        for _ in 0..4 {
            let report = backend.run_invocation(&[nodes]).unwrap();
            assert!(report
                .misspeculation_causes()
                .iter()
                .all(|c| !matches!(c, MisspeculationCause::DependenceViolation { .. })));
        }
    }

    /// The acceptance property of the pre-spawned pool: across a
    /// 100-invocation run the same OS threads serve every invocation — no
    /// per-invocation spawning.
    #[test]
    fn worker_pool_threads_are_constant_across_100_invocations() {
        let weights: Vec<i64> = (0..200).map(|i| ((i * 31) % 509) + 1).collect();
        let (program, f, nodes, _) = list_min_program(weights.len() as i64 + 4);
        let mut backend = NativeLoopBackend::new(4);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        let expected = *weights.iter().min().unwrap();

        assert!(backend.worker_thread_ids().is_none(), "pool is lazy");
        backend.run_invocation(&[head]).unwrap();
        let ids = backend.worker_thread_ids().expect("pool spawned");
        assert_eq!(ids.len(), 3);
        for inv in 1..100 {
            let report = backend.run_invocation(&[head]).unwrap();
            assert_eq!(report.return_value, Some(expected), "invocation {inv}");
        }
        assert_eq!(
            backend.worker_thread_ids().unwrap(),
            ids,
            "workers were re-spawned during the run"
        );
        // The centralized step's output is observable after each invocation.
        let plan = backend.last_plan().expect("loaded");
        assert!(!plan.is_empty(), "no plan after a converged run");
        for &(tid, threshold, row) in &plan {
            assert!(tid < 4 && row < 3 && threshold >= 1);
        }
    }

    /// Invocations over an untouched memory image skip the FlatMemory →
    /// SharedHeap mirror entirely (and still compute the right thing);
    /// mutating through `mem_mut` re-arms it.
    #[test]
    fn unchanged_memory_image_is_not_remirrored() {
        let weights: Vec<i64> = (0..150).map(|i| ((i * 13) % 271) + 2).collect();
        let (program, f, nodes, _) = list_min_program(weights.len() as i64 + 4);
        let mut backend = NativeLoopBackend::new(3);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        let expected = *weights.iter().min().unwrap();
        assert!(backend.loaded.as_ref().unwrap().heap_dirty);
        backend.run_invocation(&[head]).unwrap();
        // No driver mutation: the image stays clean across invocations.
        for _ in 0..3 {
            assert!(!backend.loaded.as_ref().unwrap().heap_dirty);
            let report = backend.run_invocation(&[head]).unwrap();
            assert_eq!(report.return_value, Some(expected));
        }
        // A driver mutation re-arms the mirror and is observed by the run.
        let new_min = -5;
        backend.mem_mut().write(nodes, new_min).unwrap();
        assert!(backend.loaded.as_ref().unwrap().heap_dirty);
        let report = backend.run_invocation(&[head]).unwrap();
        assert_eq!(report.return_value, Some(new_min));
    }

    /// Regression: an invocation that errors out mid-run may have written
    /// the persistent heap already (the main chunk's direct stores land
    /// immediately), so the mirror flag must stay armed — otherwise the
    /// next invocation would skip the re-mirror and execute on a
    /// half-written heap.
    #[test]
    fn errored_invocation_rearms_the_heap_mirror() {
        let weights: Vec<i64> = (0..100).map(|i| i + 1).collect();
        let (program, f, nodes, _) = list_min_program(weights.len() as i64 + 4);
        // A budget far too small to finish the loop: the main chunk traps
        // with OutOfFuel and run_invocation returns an error.
        let mut backend = NativeLoopBackend::new(2).with_step_budget(50);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        assert!(backend.run_invocation(&[head]).is_err());
        assert!(
            backend.loaded.as_ref().unwrap().heap_dirty,
            "error path must leave the mirror armed"
        );
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn single_thread_is_rejected() {
        let _ = NativeLoopBackend::new(1);
    }

    #[test]
    fn run_before_load_errors() {
        let mut backend = NativeLoopBackend::new(2);
        assert!(matches!(
            backend.run_invocation(&[0]),
            Err(BackendError::NotLoaded)
        ));
    }
}
