//! Native-thread execution of Spice iteration chunks.
//!
//! This is the paper's execution model (Figure 4 / Figure 5) realized with
//! real OS threads instead of simulated cores: the calling thread plays the
//! non-speculative main thread, `threads - 1` scoped worker threads start
//! from live-in values memoized during the previous invocation, buffer their
//! stores in private [`SpecView`](crate::heap::SpecView)s, and the main
//! thread validates and commits them in order — or squashes them through a
//! per-worker flag (the software analogue of the remote resteer).

use std::sync::atomic::{AtomicBool, Ordering};

use crate::heap::{HeapAccess, SharedHeap, SpecView};

/// One loop body executed over cursor values (typically node addresses in a
/// [`SharedHeap`]).
pub trait ChunkKernel: Sync {
    /// Per-thread accumulator (the loop's reductions and live-outs).
    type Acc: Send;

    /// A fresh accumulator holding the reduction identities.
    fn identity(&self) -> Self::Acc;

    /// Executes one iteration at `cursor`, reading and writing through
    /// `mem`, and returns the next cursor (`0` terminates the loop) — or
    /// `None` if the iteration faulted (e.g. the cursor was a stale
    /// prediction pointing at reclaimed memory), which squashes the chunk.
    fn iteration(&self, mem: &mut HeapAccess<'_>, cursor: i64, acc: &mut Self::Acc) -> Option<i64>;

    /// Folds a committed worker's accumulator into the main accumulator, in
    /// thread order.
    fn combine(&self, into: &mut Self::Acc, from: Self::Acc);
}

/// Result of one parallel invocation.
#[derive(Debug)]
pub struct ChunkOutcome<A> {
    /// Combined accumulator of the main thread and every committed worker.
    pub acc: A,
    /// Number of workers whose chunk was validated and committed.
    pub committed_workers: usize,
    /// `true` if at least one worker was squashed.
    pub misspeculated: bool,
    /// Iterations executed by each thread (main first).
    pub iterations_per_thread: Vec<u64>,
}

struct WorkerResult<A> {
    matched_successor: bool,
    faulted: bool,
    acc: A,
    iterations: u64,
    writes: Vec<(i64, i64)>,
    memos: Vec<(usize, i64)>,
}

/// A Spice-parallelized loop over native threads, carrying the memoized
/// chunk-boundary predictions and the load-balancing state across
/// invocations (the software analogue of Algorithm 2).
#[derive(Debug)]
pub struct NativeSpiceLoop {
    threads: usize,
    predictions: Vec<i64>,
    last_work: Vec<u64>,
}

impl NativeSpiceLoop {
    /// Creates a loop executor for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "Spice needs at least two threads");
        NativeSpiceLoop {
            threads,
            predictions: vec![0; threads - 1],
            last_work: Vec::new(),
        }
    }

    /// Seeds the load balancer with an expected first-invocation iteration
    /// count so that memoization starts immediately (otherwise the first two
    /// invocations run sequentially while the work model warms up).
    pub fn set_work_estimate(&mut self, iterations: u64) {
        let mut w = vec![0u64; self.threads];
        w[0] = iterations;
        self.last_work = w;
    }

    /// Current chunk-boundary predictions (cursor per speculative thread).
    #[must_use]
    pub fn predictions(&self) -> &[i64] {
        &self.predictions
    }

    /// Computes each thread's memoization thresholds `(local threshold, sva
    /// row)` from the last invocation's work distribution.
    fn memo_plan(&self) -> Vec<Vec<(u64, usize)>> {
        chunk_memo_plan(&self.last_work, self.threads)
    }

    /// Runs one loop invocation starting from `start`, returning the combined
    /// accumulator. The main thread executes on the calling thread; workers
    /// run on scoped threads.
    pub fn run_invocation<K: ChunkKernel>(
        &mut self,
        heap: &SharedHeap,
        kernel: &K,
        start: i64,
    ) -> ChunkOutcome<K::Acc> {
        let workers = self.threads - 1;
        let memo_plan = self.memo_plan();
        let squash: Vec<AtomicBool> = (0..workers).map(|_| AtomicBool::new(false)).collect();
        let predictions = self.predictions.clone();

        let mut outcome = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for wi in 0..workers {
                let my_start = predictions[wi];
                let succ_pred = predictions.get(wi + 1).copied();
                let plan = memo_plan[wi + 1].clone();
                let flag = &squash[wi];
                handles.push(scope.spawn(move || {
                    run_chunk(
                        kernel,
                        HeapAccess::Buffered(SpecView::new(heap)),
                        my_start,
                        succ_pred,
                        Some(flag),
                        &plan,
                    )
                }));
            }

            // Main (non-speculative) chunk on the calling thread.
            let main = run_chunk(
                kernel,
                HeapAccess::Direct(heap),
                start,
                Some(predictions[0]).filter(|_| workers > 0),
                None,
                &memo_plan[0],
            );

            let mut acc = main.acc;
            let mut memos = main.memos.clone();
            let mut iterations = vec![main.iterations];
            let mut work = vec![main.iterations];
            let mut still_valid = main.matched_successor;
            let mut committed = 0usize;
            for (wi, handle) in handles.into_iter().enumerate() {
                if !still_valid {
                    squash[wi].store(true, Ordering::Release);
                }
                let result = handle.join().expect("worker thread panicked");
                iterations.push(result.iterations);
                if still_valid && !result.faulted {
                    // Ordered commit of the validated chunk.
                    for (addr, value) in &result.writes {
                        // SAFETY: commits are performed one worker at a time,
                        // in thread order, by the main thread only, after the
                        // workers have stopped touching these words.
                        unsafe { heap.write(*addr, *value) };
                    }
                    kernel.combine(&mut acc, result.acc);
                    memos.extend(result.memos.iter().copied());
                    work.push(result.iterations);
                    committed += 1;
                    still_valid = result.matched_successor;
                } else {
                    still_valid = false;
                    work.push(0);
                }
            }
            ChunkOutcome {
                acc,
                committed_workers: committed,
                misspeculated: committed < workers,
                iterations_per_thread: iterations,
            }
            .with_feedback(memos, work)
        });

        // Predictor feedback for the next invocation.
        let (memos, work) = outcome.feedback.take().expect("feedback present");
        for (row, cursor) in memos {
            if row < self.predictions.len() {
                self.predictions[row] = cursor;
            }
        }
        self.last_work = work;
        outcome.outcome
    }
}

/// The centralized half of the load balancer (paper Algorithm 2): given the
/// per-thread work distribution of the previous invocation, computes for
/// every thread the list of `(local iteration threshold, prediction row)`
/// pairs at which it should memoize its live-in values, so the next
/// invocation's chunk boundaries split the iteration space evenly.
///
/// Shared by [`NativeSpiceLoop`] (kernel-based chunks) and the IR-level
/// [`NativeLoopBackend`](crate::ir_backend::NativeLoopBackend).
#[must_use]
pub fn chunk_memo_plan(last_work: &[u64], threads: usize) -> Vec<Vec<(u64, usize)>> {
    let t = threads;
    let mut plan = vec![Vec::new(); t];
    let total: u64 = last_work.iter().sum();
    if total == 0 {
        return plan;
    }
    let mut prefix = vec![0u64; t + 1];
    for i in 0..t {
        prefix[i + 1] = prefix[i] + last_work.get(i).copied().unwrap_or(0);
    }
    for k in 1..t {
        let g = (k as u64 * total) / t as u64;
        let mut tid = t - 1;
        for i in 0..t {
            if last_work.get(i).copied().unwrap_or(0) > 0 && g <= prefix[i + 1] {
                tid = i;
                break;
            }
        }
        plan[tid].push(((g - prefix[tid]).max(1), k - 1));
    }
    for p in &mut plan {
        p.sort_unstable();
    }
    plan
}

/// Predictor feedback gathered inside the thread scope: memoized `(row,
/// cursor)` pairs and the per-thread work distribution.
type ChunkFeedback = (Vec<(usize, i64)>, Vec<u64>);

/// Internal carrier pairing an outcome with the predictor feedback gathered
/// inside the thread scope.
struct OutcomeWithFeedback<A> {
    outcome: ChunkOutcome<A>,
    feedback: Option<ChunkFeedback>,
}

impl<A> ChunkOutcome<A> {
    fn with_feedback(self, memos: Vec<(usize, i64)>, work: Vec<u64>) -> OutcomeWithFeedback<A> {
        OutcomeWithFeedback {
            outcome: self,
            feedback: Some((memos, work)),
        }
    }
}

/// Runs one chunk: iterate from `start` until the cursor reaches 0, the
/// successor's predicted start value is observed, a fault occurs, or the
/// squash flag is raised.
fn run_chunk<K: ChunkKernel>(
    kernel: &K,
    mut mem: HeapAccess<'_>,
    start: i64,
    successor_prediction: Option<i64>,
    squash: Option<&AtomicBool>,
    memo_plan: &[(u64, usize)],
) -> WorkerResult<K::Acc> {
    let mut acc = kernel.identity();
    let mut cursor = start;
    let mut iterations: u64 = 0;
    let mut memo_idx = 0usize;
    let mut memos = Vec::new();
    let mut matched = false;
    let mut faulted = false;
    loop {
        if cursor == 0 {
            break;
        }
        if let Some(pred) = successor_prediction {
            if pred != 0 && cursor == pred && iterations > 0 {
                matched = true;
                break;
            }
            // Matching at iteration 0 means this chunk *starts* where its
            // successor starts; treat it as an immediate hand-off as well.
            if pred != 0 && cursor == pred && start == pred {
                matched = true;
                break;
            }
        }
        if let Some(flag) = squash {
            if flag.load(Ordering::Acquire) {
                faulted = true;
                break;
            }
        }
        if memo_idx < memo_plan.len() && iterations >= memo_plan[memo_idx].0 {
            memos.push((memo_plan[memo_idx].1, cursor));
            memo_idx += 1;
        }
        match kernel.iteration(&mut mem, cursor, &mut acc) {
            Some(next) => cursor = next,
            None => {
                faulted = true;
                break;
            }
        }
        iterations += 1;
        // A stale prediction can send a speculative chunk on an unbounded
        // walk (the paper's "loop forever" case); bound it defensively so the
        // squash flag is the only thing that can keep a worker alive.
        if iterations > 100_000_000 {
            faulted = true;
            break;
        }
    }
    let writes = match mem {
        HeapAccess::Direct(_) => Vec::new(),
        HeapAccess::Buffered(view) => view.into_writes(),
    };
    WorkerResult {
        matched_successor: matched,
        faulted,
        acc,
        iterations,
        writes,
        memos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linked-list minimum kernel: nodes are `(weight, next)` pairs.
    struct ListMin;

    impl ChunkKernel for ListMin {
        type Acc = i64;

        fn identity(&self) -> i64 {
            i64::MAX
        }

        fn iteration(&self, mem: &mut HeapAccess<'_>, cursor: i64, acc: &mut i64) -> Option<i64> {
            let w = mem.read(cursor)?;
            if w < *acc {
                *acc = w;
            }
            mem.read(cursor + 1)
        }

        fn combine(&self, into: &mut i64, from: i64) {
            if from < *into {
                *into = from;
            }
        }
    }

    /// Kernel that also stores a transformed value into each node (exercises
    /// speculative write buffering and ordered commit).
    struct ListStamp;

    impl ChunkKernel for ListStamp {
        type Acc = i64;

        fn identity(&self) -> i64 {
            0
        }

        fn iteration(&self, mem: &mut HeapAccess<'_>, cursor: i64, acc: &mut i64) -> Option<i64> {
            let w = mem.read(cursor)?;
            mem.write(cursor + 2, w * 10);
            *acc += 1;
            mem.read(cursor + 1)
        }

        fn combine(&self, into: &mut i64, from: i64) {
            *into += from;
        }
    }

    fn build_list(heap: &mut SharedHeap, base: i64, weights: &[i64], stride: i64) -> i64 {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + stride * i as i64;
            let next = if i + 1 < weights.len() {
                addr + stride
            } else {
                0
            };
            heap.fill(addr, &[*w, next]);
        }
        base
    }

    #[test]
    fn chunked_min_matches_sequential_and_parallelizes() {
        let weights: Vec<i64> = (0..5000).map(|i| (i * 37) % 9973 + 1).collect();
        let mut heap = SharedHeap::new(16 * 5000 + 16);
        let head = build_list(&mut heap, 8, &weights, 2);
        let expected = *weights.iter().min().unwrap();

        let mut exec = NativeSpiceLoop::new(4);
        exec.set_work_estimate(weights.len() as u64);
        let mut saw_parallel = false;
        for _ in 0..4 {
            let out = exec.run_invocation(&heap, &ListMin, head);
            assert_eq!(out.acc, expected);
            let active = out.iterations_per_thread.iter().filter(|&&n| n > 0).count();
            if active >= 3 && !out.misspeculated {
                saw_parallel = true;
            }
        }
        assert!(saw_parallel, "work never spread across native threads");
    }

    #[test]
    fn speculative_stores_commit_only_for_valid_chunks() {
        let weights: Vec<i64> = (0..800).map(|i| i + 1).collect();
        let mut heap = SharedHeap::new(4 * 800 + 16);
        let head = build_list_stride3(&mut heap, 9, &weights);
        let mut exec = NativeSpiceLoop::new(4);
        exec.set_work_estimate(weights.len() as u64);
        for _ in 0..3 {
            let out = exec.run_invocation(&heap, &ListStamp, head);
            assert_eq!(out.acc, 800);
        }
        // Every node was stamped exactly once per invocation with 10x its
        // weight, regardless of which thread executed it.
        for (i, w) in weights.iter().enumerate() {
            let addr = 9 + 3 * i as i64;
            assert_eq!(heap.read(addr + 2), Some(w * 10));
        }
    }

    fn build_list_stride3(heap: &mut SharedHeap, base: i64, weights: &[i64]) -> i64 {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + 3 * i as i64;
            let next = if i + 1 < weights.len() { addr + 3 } else { 0 };
            heap.fill(addr, &[*w, next, 0]);
        }
        base
    }

    #[test]
    fn stale_predictions_are_squashed_without_corrupting_results() {
        let weights: Vec<i64> = (0..2000).map(|i| 10_000 - i).collect();
        let mut heap = SharedHeap::new(2 * 2000 + 16);
        let head = build_list(&mut heap, 4, &weights, 2);
        let mut exec = NativeSpiceLoop::new(3);
        exec.set_work_estimate(weights.len() as u64);
        // Warm up so predictions point at real nodes.
        let first = exec.run_invocation(&heap, &ListMin, head);
        assert_eq!(first.acc, 10_000 - 1999);
        // Invalidate the list structure the predictions refer to: rebuild the
        // list skipping every other node, so many predicted cursors are no
        // longer reachable from the head.
        let shorter: Vec<i64> = weights.iter().copied().step_by(2).collect();
        let head2 = build_list(&mut heap, 4, &shorter, 4);
        let out = exec.run_invocation(&heap, &ListMin, head2);
        assert_eq!(out.acc, *shorter.iter().min().unwrap());
        // And running again re-learns boundaries on the new list.
        let out2 = exec.run_invocation(&heap, &ListMin, head2);
        assert_eq!(out2.acc, *shorter.iter().min().unwrap());
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn single_thread_is_rejected() {
        let _ = NativeSpiceLoop::new(1);
    }
}
