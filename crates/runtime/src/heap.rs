//! A shared word heap with speculative write buffering for real OS threads.
//!
//! The timing simulator in `spice-sim` models the paper's hardware support
//! for speculative state; this module provides the same contract in software
//! for native execution: concurrent threads read a shared flat heap, the
//! non-speculative main thread writes it directly, and speculative workers
//! buffer their writes privately until the Spice protocol decides to commit
//! or squash them.
//!
//! The shared storage uses interior mutability (`UnsafeCell`) because the
//! ownership structure — "exactly one thread may write any given word
//! non-speculatively during an invocation, everyone may read" — is a dynamic
//! protocol property the borrow checker cannot see. All unsafety is confined
//! to [`SharedHeap`]; the public surface is safe except for
//! [`SharedHeap::write`], whose contract documents the protocol requirement.

use std::cell::UnsafeCell;

use spice_ir::exec::{AccessSet, DenseMap};

/// A flat, word-addressable heap shared by the Spice threads of one loop.
#[derive(Debug)]
pub struct SharedHeap {
    words: UnsafeCell<Box<[i64]>>,
    len: usize,
}

// SAFETY: concurrent access is governed by the Spice execution protocol (see
// the module documentation): reads may race only with the single
// non-speculative writer of a word, and the values involved are plain `i64`s
// written and read with volatile-free, word-sized accesses. The protocol
// guarantees that any word a thread reads for a *correctness-critical*
// decision is either thread-private or stable for the duration of the read.
unsafe impl Sync for SharedHeap {}

impl SharedHeap {
    /// Creates a zeroed heap of `len` words.
    #[must_use]
    pub fn new(len: usize) -> Self {
        SharedHeap {
            words: UnsafeCell::new(vec![0i64; len].into_boxed_slice()),
            len,
        }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap has zero words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads word `addr`, or `None` if out of bounds (a speculative thread
    /// chasing a dangling prediction must fault gracefully, not crash the
    /// process).
    #[must_use]
    pub fn read(&self, addr: i64) -> Option<i64> {
        let idx = usize::try_from(addr).ok()?;
        if idx >= self.len {
            return None;
        }
        // SAFETY: idx is in bounds; see the `Sync` justification above for
        // why a concurrent read is acceptable under the execution protocol.
        unsafe { Some((*self.words.get())[idx]) }
    }

    /// Writes word `addr`.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread writing `addr` at this moment and
    /// no other thread may be relying on reading a stable value from `addr`
    /// concurrently — in the Spice protocol this holds for the
    /// non-speculative main thread and for ordered commits of validated
    /// speculative buffers.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds (non-speculative writes to invalid
    /// addresses are always a harness bug).
    pub unsafe fn write(&self, addr: i64, value: i64) {
        let idx = usize::try_from(addr).expect("non-speculative write out of bounds");
        assert!(idx < self.len, "non-speculative write out of bounds");
        (*self.words.get())[idx] = value;
    }

    /// Fills `[base, base + values.len())` with `values` (single-threaded
    /// setup helper).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn fill(&mut self, base: i64, values: &[i64]) {
        let idx = usize::try_from(base).expect("base in bounds");
        let slice = self.words.get_mut();
        slice[idx..idx + values.len()].copy_from_slice(values);
    }

    /// Creates a heap holding a copy of `words` — used by backends that
    /// mirror a flat memory image into the shared heap for one invocation.
    #[must_use]
    pub fn from_words(words: &[i64]) -> Self {
        SharedHeap {
            words: UnsafeCell::new(words.to_vec().into_boxed_slice()),
            len: words.len(),
        }
    }

    /// Exclusive view of every word (single-threaded phases only — the
    /// `&mut` receiver guarantees no worker holds a reference).
    #[must_use]
    pub fn words_mut(&mut self) -> &mut [i64] {
        self.words.get_mut()
    }

    /// Overwrites the whole heap from `src` — the between-invocations mirror
    /// of a mutated canonical memory image into a *persistent* shared heap.
    ///
    /// # Safety
    ///
    /// The caller must be in a single-threaded phase: no worker may be
    /// reading or writing any word concurrently (in the Spice runtime this
    /// holds between invocations, after every worker has reported its chunk).
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the heap length.
    pub unsafe fn overwrite(&self, src: &[i64]) {
        let words = &mut *self.words.get();
        assert_eq!(src.len(), words.len(), "heap image length changed");
        words.copy_from_slice(src);
    }

    /// Copies the whole heap into `dst` — the post-invocation commit of the
    /// shared heap back into the canonical memory image.
    ///
    /// # Safety
    ///
    /// Same single-threaded-phase contract as [`SharedHeap::overwrite`].
    ///
    /// # Panics
    ///
    /// Panics if `dst.len()` differs from the heap length.
    pub unsafe fn snapshot_into(&self, dst: &mut [i64]) {
        let words = &*self.words.get();
        assert_eq!(dst.len(), words.len(), "heap image length changed");
        dst.copy_from_slice(words);
    }
}

/// A speculative view of a [`SharedHeap`]: reads see the thread's own
/// buffered writes first, writes are buffered and never touch shared memory
/// until [`SpecView::into_writes`] hands them to the committer.
///
/// With read tracking enabled ([`SpecView::with_read_tracking`]), the view
/// additionally records its *load set* — every address read through
/// [`SpecView::read_tracked`] that was **not** satisfied by the thread's own
/// store buffer — as an [`AccessSet`]. This is the per-chunk half of the
/// memory-dependence speculation subsystem: at commit time the runtime
/// intersects a chunk's load set against the write sets of logically earlier
/// chunks and squashes on overlap (a RAW violation). Store-forwarded reads
/// are excluded because they can never observe a stale value.
#[derive(Debug)]
pub struct SpecView<'h> {
    heap: &'h SharedHeap,
    /// Buffered writes in an insertion-ordered open-addressed map — its
    /// entry order is the first-write order an ordered commit needs, with no
    /// hashing overhead on the per-store path.
    writes: DenseMap<i64>,
    reads: AccessSet,
    track_reads: bool,
}

impl<'h> SpecView<'h> {
    /// Creates an empty speculative view without read tracking.
    #[must_use]
    pub fn new(heap: &'h SharedHeap) -> Self {
        SpecView {
            heap,
            writes: DenseMap::new(),
            reads: AccessSet::new(),
            track_reads: false,
        }
    }

    /// Creates an empty speculative view, recording the load set when
    /// `track` is set (the [`spice_ir::exec::ConflictPolicy::Detect`] mode).
    #[must_use]
    pub fn with_read_tracking(heap: &'h SharedHeap, track: bool) -> Self {
        SpecView {
            track_reads: track,
            ..SpecView::new(heap)
        }
    }

    /// The same view with its load set coarsened to
    /// `2^granularity_log2`-word grains (see
    /// [`AccessSet::with_granularity`]); the validation side must build its
    /// write sets at the same granularity.
    #[must_use]
    pub fn with_conflict_granularity(mut self, granularity_log2: u8) -> Self {
        debug_assert!(self.reads.is_empty(), "set the granularity before reads");
        self.reads = AccessSet::with_granularity(granularity_log2);
        self
    }

    /// Reads a word, preferring this thread's own speculative writes.
    #[must_use]
    pub fn read(&self, addr: i64) -> Option<i64> {
        if let Some(v) = self.writes.get(addr) {
            return Some(v);
        }
        self.heap.read(addr)
    }

    /// Reads a word like [`read`](Self::read), recording `addr` in the load
    /// set when read tracking is on and the read fell through to the shared
    /// heap (i.e. was not store-forwarded from this thread's own buffer).
    #[must_use]
    pub fn read_tracked(&mut self, addr: i64) -> Option<i64> {
        if let Some(v) = self.writes.get(addr) {
            return Some(v);
        }
        if self.track_reads {
            self.reads.insert(addr);
        }
        self.heap.read(addr)
    }

    /// The load set recorded so far (empty unless read tracking is on).
    #[must_use]
    pub fn reads(&self) -> &AccessSet {
        &self.reads
    }

    /// Buffers a speculative write.
    pub fn write(&mut self, addr: i64, value: i64) {
        self.writes.insert(addr, value);
    }

    /// Number of distinct words written.
    #[must_use]
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Discards the buffered writes while keeping the recorded load set
    /// (and the tracking mode). Used when a worker finishes replaying the
    /// loop's entry code: the replayed stores must not be committed twice,
    /// but the replay's reads ran concurrently with the main chunk, so a
    /// load of a word the loop later writes is a genuine dependence the
    /// validation must still see.
    pub fn drop_writes(&mut self) {
        self.writes.clear();
    }

    /// Consumes the view and returns the buffered writes in first-write
    /// order, for an ordered commit.
    #[must_use]
    pub fn into_writes(self) -> Vec<(i64, i64)> {
        self.into_parts().0
    }

    /// Consumes the view and returns the buffered writes (first-write order)
    /// together with the recorded load set.
    #[must_use]
    pub fn into_parts(self) -> (Vec<(i64, i64)>, AccessSet) {
        (self.writes.entries().to_vec(), self.reads)
    }
}

/// How one thread accesses memory during a chunk: directly (the main,
/// non-speculative thread) or through a speculative buffer (workers).
#[derive(Debug)]
pub enum HeapAccess<'h> {
    /// Non-speculative access: writes go straight to the shared heap.
    Direct(&'h SharedHeap),
    /// Speculative access: writes are buffered in a [`SpecView`].
    Buffered(SpecView<'h>),
}

impl HeapAccess<'_> {
    /// Reads a word.
    #[must_use]
    pub fn read(&self, addr: i64) -> Option<i64> {
        match self {
            HeapAccess::Direct(h) => h.read(addr),
            HeapAccess::Buffered(v) => v.read(addr),
        }
    }

    /// Writes a word (directly or speculatively, depending on the mode).
    pub fn write(&mut self, addr: i64, value: i64) {
        match self {
            HeapAccess::Direct(h) => {
                // SAFETY: the main thread is the only non-speculative writer
                // during an invocation (Spice protocol).
                unsafe { h.write(addr, value) }
            }
            HeapAccess::Buffered(v) => v.write(addr, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut h = SharedHeap::new(64);
        h.fill(10, &[1, 2, 3]);
        assert_eq!(h.read(11), Some(2));
        assert_eq!(h.read(1000), None);
        assert_eq!(h.read(-1), None);
        unsafe { h.write(11, 9) };
        assert_eq!(h.read(11), Some(9));
        assert_eq!(h.len(), 64);
        assert!(!h.is_empty());
    }

    #[test]
    fn spec_view_buffers_writes_until_commit() {
        let h = SharedHeap::new(32);
        let mut v = SpecView::new(&h);
        v.write(5, 42);
        v.write(6, 43);
        v.write(5, 44);
        assert_eq!(v.read(5), Some(44));
        assert_eq!(h.read(5), Some(0), "shared heap untouched before commit");
        assert_eq!(v.write_count(), 2);
        let writes = v.into_writes();
        assert_eq!(writes, vec![(5, 44), (6, 43)]);
        for (a, val) in writes {
            unsafe { h.write(a, val) };
        }
        assert_eq!(h.read(5), Some(44));
    }

    #[test]
    fn heap_access_modes_behave_differently() {
        let h = SharedHeap::new(16);
        let mut direct = HeapAccess::Direct(&h);
        direct.write(3, 7);
        assert_eq!(h.read(3), Some(7));
        let mut buffered = HeapAccess::Buffered(SpecView::new(&h));
        buffered.write(3, 99);
        assert_eq!(buffered.read(3), Some(99));
        assert_eq!(h.read(3), Some(7));
    }

    #[test]
    fn read_tracking_records_only_heap_fallthrough_reads() {
        let h = SharedHeap::new(64);
        let mut v = SpecView::with_read_tracking(&h, true);
        v.write(10, 7);
        assert_eq!(v.read_tracked(10), Some(7), "store-forwarded");
        assert_eq!(v.read_tracked(20), Some(0), "fell through to heap");
        let _ = v.read_tracked(999); // out of bounds still recorded: the
                                     // chunk faults, but the set must not lie
        assert!(!v.reads().contains(10), "forwarded reads are not stale");
        assert!(v.reads().contains(20));
        assert!(v.reads().contains(999));
        let (writes, reads) = v.into_parts();
        assert_eq!(writes, vec![(10, 7)]);
        assert_eq!(reads.len(), 2);

        // Tracking off: the load set stays empty.
        let mut quiet = SpecView::with_read_tracking(&h, false);
        assert_eq!(quiet.read_tracked(20), Some(0));
        assert!(quiet.reads().is_empty());
    }

    #[test]
    fn concurrent_readers_are_allowed() {
        let mut h = SharedHeap::new(1024);
        h.fill(0, &(0..1024).collect::<Vec<i64>>());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut sum = 0i64;
                    for a in 0..1024 {
                        sum += h.read(a).unwrap();
                    }
                    assert_eq!(sum, 1023 * 1024 / 2);
                });
            }
        });
    }
}
