//! The `inspect` binary: a thin argument layer over
//! [`spice_inspect`]'s commands.
//!
//! ```text
//! cargo run -p spice-inspect --bin inspect -- <bench> <command> [args]
//!   <bench> trace <from> <to>      events with `at` in [from, to]
//!   <bench> break <cycle>          snapshot-resume to cycle, dump state
//!   <bench> watch <addr>           record every access of addr
//!   <bench> why-squash [chunk]     explain dependence-violation squashes
//! flags: --threads N   speculative worker cores (default 4)
//! ```

use spice_inspect::{cmd_break, cmd_trace, cmd_watch, cmd_why_squash, run_traced, Observers};

const USAGE: &str = "usage: inspect <bench> <command> [args]
commands:
  trace <from> <to>    print events with `at` in [from, to]
  break <cycle>        resume from the nearest snapshot, pause at cycle,
                       dump per-core machine state
  watch <addr>         print every load/store of addr
  why-squash [chunk]   explain dependence-violation squashes (optionally
                       a single chunk id)
flags:
  --threads N          speculative worker cores (default 4)";

fn fail(msg: &str) -> ! {
    eprintln!("inspect: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(arg: Option<&String>, what: &str) -> T {
    let Some(raw) = arg else {
        fail(&format!("missing {what}"));
    };
    raw.parse()
        .unwrap_or_else(|_| fail(&format!("bad {what}: {raw:?}")))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let v: usize = parse(args.get(i + 1), "--threads value");
            args.drain(i..=i + 1);
            v
        }
        None => 4,
    };
    let (Some(bench), Some(command)) = (args.first().cloned(), args.get(1).cloned()) else {
        fail("need a benchmark and a command");
    };

    let no_observers = Observers {
        watch: None,
        snapshot_interval: None,
    };
    let report = match command.as_str() {
        "trace" => {
            let from: u64 = parse(args.get(2), "trace <from>");
            let to: u64 = parse(args.get(3), "trace <to>");
            run_traced(&bench, threads, no_observers).map(|run| cmd_trace(&run, from, to))
        }
        "break" => {
            let cycle: u64 = parse(args.get(2), "break <cycle>");
            cmd_break(&bench, threads, cycle)
        }
        "watch" => {
            let addr: i64 = parse(args.get(2), "watch <addr>");
            run_traced(
                &bench,
                threads,
                Observers {
                    watch: Some(addr),
                    snapshot_interval: None,
                },
            )
            .map(|run| cmd_watch(&run, addr))
        }
        "why-squash" => {
            let chunk: Option<u64> = args.get(2).map(|raw| {
                raw.parse()
                    .unwrap_or_else(|_| fail(&format!("bad chunk id: {raw:?}")))
            });
            run_traced(&bench, threads, no_observers).map(|run| cmd_why_squash(&run, chunk))
        }
        other => fail(&format!("unknown command {other:?}")),
    };

    match report {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("inspect: {e}");
            std::process::exit(1);
        }
    }
}
