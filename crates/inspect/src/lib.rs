//! # spice-inspect — time-travel debugger for the Spice simulator
//!
//! A command layer over the simulator's observability surface (event
//! tracing, periodic snapshots, `run_until`): each command re-runs a
//! benchmark deterministically with the observers it needs and renders a
//! report. Because the simulator is single-threaded and tracing is purely
//! observational, every command sees the exact run the benchmarks measure —
//! same cycles, same squashes, same addresses.
//!
//! Commands (the `inspect` binary's verbs):
//!
//! * `trace <from> <to>` — print every event in an `at` range;
//! * `break <cycle>` — resume from the nearest snapshot at or before
//!   `cycle`, run to exactly `cycle`, and dump per-core machine state;
//! * `watch <addr>` — record every load/store of an address;
//! * `why-squash [chunk]` — reconstruct the RAW chain behind a
//!   dependence-violation squash: violating address, writer chunk/core and
//!   store site, reader site, conflict granularity.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use spice_bench::experiments::{
    all_workload_factories, prepare_sweep, SweepMode, SweepPrep, WorkloadFactory,
};
use spice_bench::trace_json::{cause_label, trace_event_json};
use spice_core::SimBackend;
use spice_ir::exec::ExecutionBackend;
use spice_ir::trace::DEFAULT_TRACE_CAPACITY;
use spice_ir::{MisspeculationCause, TraceEvent};
use spice_sim::{Machine, MachineSnapshot};
use spice_workloads::{drive_loaded_workload, BackendRunSummary};

/// What a session observes before running a command.
#[derive(Debug, Clone, Copy)]
pub struct Observers {
    /// Addresses to watch (loads/stores become [`TraceEvent::Watch`]).
    pub watch: Option<i64>,
    /// Periodic snapshot interval in cycles (for `break`).
    pub snapshot_interval: Option<u64>,
}

/// One deterministic traced run of a benchmark on the Spice simulator.
pub struct InspectRun {
    /// Backend summary (invocations, squashes, violations).
    pub summary: BackendRunSummary,
    /// Every event the recorder held at the end of the run.
    pub events: Vec<TraceEvent>,
    /// Snapshots the periodic recorder took (empty unless requested).
    pub snapshots: Vec<MachineSnapshot>,
    /// Final machine state dump.
    pub final_state: String,
}

/// Builds the preparation for `bench` on the small suite.
///
/// # Errors
///
/// Returns a message naming the benchmark if unknown, or any
/// analysis/transformation failure.
pub fn prepare(bench: &str, threads: usize) -> Result<(WorkloadFactory, SweepPrep), String> {
    let factory = all_workload_factories(true)
        .into_iter()
        .find(|(name, _)| *name == bench)
        .map(|(_, f)| f)
        .ok_or_else(|| {
            let names: Vec<&str> = all_workload_factories(true)
                .iter()
                .map(|(name, _)| *name)
                .collect();
            format!(
                "unknown benchmark {bench:?} (expected one of {})",
                names.join(", ")
            )
        })?;
    let prep = prepare_sweep(&factory, SweepMode::Spice { threads }, true, 0)?;
    Ok((factory, prep))
}

/// Runs `bench` once on the simulator with tracing (and any extra
/// observers) enabled and collects everything the commands render from.
///
/// # Errors
///
/// Returns the preparation or simulation failure.
pub fn run_traced(bench: &str, threads: usize, observers: Observers) -> Result<InspectRun, String> {
    let (factory, prep) = prepare(bench, threads)?;
    let mut wl = factory();
    let _ = wl.build();
    let mut backend = SimBackend::from_prepared(&prep.prepared);
    backend.enable_trace(DEFAULT_TRACE_CAPACITY);
    if let Some(machine) = backend.machine_mut() {
        if let Some(addr) = observers.watch {
            machine.watch_address(addr);
        }
        if let Some(interval) = observers.snapshot_interval {
            machine.enable_snapshots(interval);
        }
    }
    let summary = drive_loaded_workload(wl.as_mut(), &mut backend)?;
    let events = backend
        .trace()
        .map(|t| t.events().cloned().collect())
        .unwrap_or_default();
    let (snapshots, final_state) = backend
        .machine()
        .map(|m| (m.snapshots_taken().to_vec(), m.state_dump()))
        .unwrap_or_default();
    Ok(InspectRun {
        summary,
        events,
        snapshots,
        final_state,
    })
}

/// `trace <from> <to>`: renders every event whose `at` falls in the
/// inclusive range, one JSON object per line.
#[must_use]
pub fn cmd_trace(run: &InspectRun, from: u64, to: u64) -> String {
    let mut out = String::new();
    let mut shown = 0usize;
    for e in &run.events {
        let at = e.at();
        if at >= from && at <= to {
            out.push_str(&trace_event_json(e));
            out.push('\n');
            shown += 1;
        }
    }
    out.push_str(&format!(
        "{shown} events in [{from}, {to}] ({} recorded in total)\n",
        run.events.len()
    ));
    out
}

/// `watch <addr>`: renders every recorded access of the watched address.
#[must_use]
pub fn cmd_watch(run: &InspectRun, addr: i64) -> String {
    let mut out = String::new();
    let mut hits = 0usize;
    for e in &run.events {
        if let TraceEvent::Watch {
            at,
            core,
            func,
            block,
            addr: a,
            value,
            is_store,
        } = e
        {
            if *a == addr {
                out.push_str(&format!(
                    "at {at}: core {core} {} address {a} = {value} ({func}:{block})\n",
                    if *is_store { "store to" } else { "load of" },
                ));
                hits += 1;
            }
        }
    }
    out.push_str(&format!("{hits} accesses of address {addr}\n"));
    out
}

/// `break <cycle>`: resumes the machine from the latest snapshot at or
/// before `cycle`, runs forward to exactly `cycle`, and dumps per-core
/// scheduler state — the time-travel path end to end.
///
/// # Errors
///
/// Returns the preparation/simulation failure, or a message when no
/// snapshot precedes `cycle`.
pub fn cmd_break(bench: &str, threads: usize, cycle: u64) -> Result<String, String> {
    // Interval chosen so several snapshots precede the breakpoint; the
    // recorder starts one interval in, so cycle/4 guarantees coverage for
    // any cycle >= 4.
    let interval = (cycle / 4).max(1);
    let run = run_traced(
        bench,
        threads,
        Observers {
            watch: None,
            snapshot_interval: Some(interval),
        },
    )?;
    let snap = run
        .snapshots
        .iter()
        .rev()
        .find(|s| s.cycle() <= cycle)
        .ok_or_else(|| {
            format!(
                "no snapshot at or before cycle {cycle} (run ended at: {})",
                run.final_state.lines().next().unwrap_or("?")
            )
        })?;
    let mut machine = Machine::resume_from(snap);
    let paused = machine
        .run_until(cycle)
        .map_err(|e| format!("resumed run failed: {e:?}"))?;
    let mut out = format!(
        "resumed from snapshot at cycle {} ({} snapshots taken)\n",
        snap.cycle(),
        run.snapshots.len()
    );
    if paused.is_some() {
        out.push_str(&format!(
            "program finished before cycle {cycle}; state at completion:\n"
        ));
    } else {
        out.push_str(&format!("paused at breakpoint, cycle {cycle}:\n"));
    }
    out.push_str(&machine.state_dump());
    Ok(out)
}

/// `why-squash [chunk]`: reconstructs the read-after-write chain behind
/// each dependence-violation squash (optionally only for one chunk id):
/// the violating address, the writer chunk/core and its store site, the
/// squashed reader's site, and the conflict granularity. Ends with the
/// backend's own violation counter so the reconstruction can be checked
/// against the run's accounting.
#[must_use]
pub fn cmd_why_squash(run: &InspectRun, chunk: Option<u64>) -> String {
    let mut out = String::new();
    let mut squashes = 0usize;
    let mut violations = 0usize;
    for e in &run.events {
        let TraceEvent::ChunkSquash {
            at,
            core,
            chunk: victim,
            cause,
            forensics,
        } = e
        else {
            continue;
        };
        if chunk.is_some() && *victim != chunk {
            continue;
        }
        squashes += 1;
        let victim_label = victim.map_or_else(|| "?".to_string(), |c| c.to_string());
        match cause {
            MisspeculationCause::DependenceViolation { addr } => {
                violations += 1;
                out.push_str(&format!(
                    "chunk {victim_label} squashed at {at} on core {core}: dependence violation\n"
                ));
                out.push_str(&format!("  violating address {addr}"));
                if let Some(f) = forensics {
                    if let Some(w) = f.word_addr {
                        out.push_str(&format!(" (word {w})"));
                    }
                    out.push_str(&format!(
                        ", conflict granularity 2^{}\n",
                        f.granularity_log2
                    ));
                    let writer_chunk = f
                        .writer_chunk
                        .map_or_else(|| "main".to_string(), |c| format!("{c}"));
                    out.push_str(&format!("  writer: chunk {writer_chunk}"));
                    if let Some(c) = f.writer_core {
                        out.push_str(&format!(" on core {c}"));
                    }
                    if let Some((func, block)) = f.writer_site {
                        out.push_str(&format!(", store at {func}:{block}"));
                    }
                    if let Some(at) = f.writer_at {
                        out.push_str(&format!(", at {at}"));
                    }
                    out.push('\n');
                    out.push_str(&format!("  reader: chunk {victim_label}"));
                    if let Some((func, block)) = f.reader_site {
                        out.push_str(&format!(", load at {func}:{block}"));
                    }
                    out.push('\n');
                    out.push_str(&format!(
                        "  false conflicts at this granularity: {}\n",
                        f.false_conflicts
                    ));
                } else {
                    out.push('\n');
                }
            }
            other => {
                out.push_str(&format!(
                    "chunk {victim_label} squashed at {at} on core {core}: {}\n",
                    cause_label(other)
                ));
            }
        }
    }
    if squashes == 0 {
        if let Some(c) = chunk {
            return format!("no squash recorded for chunk {c}\n");
        }
        out.push_str("no squashes recorded\n");
    }
    out.push_str(&format!(
        "{violations} dependence-violation squashes explained; backend reports {} \
         violations over {} squashed chunks\n",
        run.summary.dependence_violations, run.summary.squashed_chunks
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn why_squash_on_list_splice_names_the_violating_address_and_writer() {
        let run = run_traced(
            "list_splice",
            4,
            Observers {
                watch: None,
                snapshot_interval: None,
            },
        )
        .expect("traced run");
        assert!(run.summary.dependence_violations > 0, "needs violations");
        let report = cmd_why_squash(&run, None);
        assert!(report.contains("violating address "), "{report}");
        assert!(report.contains("writer: chunk "), "{report}");
        assert!(report.contains("reader: chunk "), "{report}");
        // The reconstruction must agree with the backend's accounting.
        let explained: usize = report
            .lines()
            .filter(|l| l.ends_with("dependence violation"))
            .count();
        assert_eq!(explained, run.summary.dependence_violations, "{report}");

        // The reported pair identifies a real chunk: every dependence
        // squash names a victim chunk that a ChunkBegin introduced.
        let begun: Vec<u64> = run
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ChunkBegin { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .collect();
        let squashed: Vec<u64> = run
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ChunkSquash {
                    chunk: Some(c),
                    cause: MisspeculationCause::DependenceViolation { .. },
                    ..
                } => Some(*c),
                _ => None,
            })
            .collect();
        assert!(!squashed.is_empty());
        assert!(squashed.iter().all(|c| begun.contains(c)));
    }

    #[test]
    fn break_resumes_and_pauses_at_the_requested_cycle() {
        let report = cmd_break("list_splice", 4, 2_000).expect("break");
        assert!(
            report.contains("paused at breakpoint, cycle 2000:")
                || report.contains("program finished before cycle 2000"),
            "{report}"
        );
        assert!(
            report.contains("resumed from snapshot at cycle "),
            "{report}"
        );
    }

    #[test]
    fn unknown_benchmark_is_a_clear_error() {
        let Err(err) = prepare("nonesuch", 4) else {
            panic!("expected an error for an unknown benchmark");
        };
        assert!(err.contains("unknown benchmark"), "{err}");
        assert!(err.contains("list_splice"), "{err}");
    }
}
