//! # spice-profiler — loop live-in predictability profiling (paper §6)
//!
//! The paper's value profiler decides which loops are worth
//! Spice-parallelizing by measuring, over a whole application run, how often
//! a loop's iteration live-ins repeat across consecutive invocations. It has
//! two components, both reproduced here:
//!
//! * an **instrumenter** ([`instrument::instrument_program`]) that finds
//!   candidate loops, strips reduction live-ins and inserts per-iteration
//!   recording hooks, and
//! * an **analyzer** ([`analyze::Analyzer`]) that turns the recorded live-in
//!   signatures into per-loop predictability verdicts, sampled per
//!   invocation and binned as in Figure 8.
//!
//! [`profile_workload`] glues the two to a [`spice_workloads::SpiceWorkload`]
//! driver, and [`measure_hotness`] provides the dynamic-instruction loop
//! hotness used in Table 2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod instrument;

use std::collections::HashSet;

use spice_ir::cfg::Cfg;
use spice_ir::interp::{run_function_with, FlatMemory, MemPort, SysPort};
use spice_ir::loops::LoopForest;
use spice_ir::{BlockId, FuncId, Program, TrapKind};
use spice_workloads::SpiceWorkload;

pub use analyze::{Analyzer, AnalyzerConfig, LoopVerdict, PredictabilityBin, ProfilingSys};
pub use instrument::{instrument_program, Instrumentation, ProfiledLoop};

/// Default per-run instruction budget for profiling runs.
const PROFILE_FUEL: u64 = 200_000_000;

/// Profiles a workload: builds its program, instruments every candidate
/// loop, drives the workload's invocations sequentially and returns the
/// per-loop predictability verdicts.
///
/// # Errors
///
/// Propagates traps from the instrumented program (a workload bug).
pub fn profile_workload(
    workload: &mut dyn SpiceWorkload,
    config: AnalyzerConfig,
    max_invocations: Option<usize>,
) -> Result<Vec<LoopVerdict>, TrapKind> {
    let built = workload.build();
    let mut program = built.program;
    let _sites = instrument_program(&mut program);
    let mut mem = FlatMemory::for_program(&program, 1 << 22);
    let mut analyzer = Analyzer::new(config);
    let mut args = workload.init(&mut mem);
    let limit = max_invocations.unwrap_or(workload.invocations());
    for inv in 0..limit {
        analyzer.new_invocation();
        {
            let mut sys = ProfilingSys::new(&mut analyzer);
            run_function_with(
                &program,
                built.kernel,
                &args,
                &mut mem,
                &mut sys,
                PROFILE_FUEL,
                |_, _, _| {},
            )?;
        }
        match workload.next_invocation(&mut mem, inv) {
            Some(a) => args = a,
            None => break,
        }
    }
    analyzer.exit_program();
    Ok(analyzer.verdicts())
}

/// Dynamic-instruction hotness of a loop: the fraction of all retired
/// instructions of a run that belong to the loop rooted at `header`
/// (Table 2's "hotness" column, measured the way the paper's instrumenter
/// selects candidate loops — by dynamic instruction count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, serde::Deserialize)]
pub struct HotnessReport {
    /// Instructions retired inside the loop.
    pub loop_instructions: u64,
    /// Instructions retired in total.
    pub total_instructions: u64,
}

impl HotnessReport {
    /// Loop hotness in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.loop_instructions as f64 / self.total_instructions as f64
        }
    }
}

use serde::Serialize;

/// Measures the dynamic instruction counts of one run of `func`, attributing
/// instructions to the loop whose header is `header` (or to the function's
/// largest top-level loop when `header` is `None`).
///
/// # Errors
///
/// Propagates traps raised by the run.
pub fn measure_hotness(
    program: &Program,
    func: FuncId,
    header: Option<BlockId>,
    args: &[i64],
    mem: &mut impl MemPort,
    sys: &mut impl SysPort,
) -> Result<HotnessReport, TrapKind> {
    let f = program.func(func);
    let forest = LoopForest::of(f);
    let cfg = Cfg::new(f);
    let _ = &cfg;
    let loop_blocks: HashSet<BlockId> = match header {
        Some(h) => forest
            .loop_with_header(h)
            .map(|id| forest.get(id).blocks.clone())
            .unwrap_or_default(),
        None => forest
            .top_level()
            .into_iter()
            .map(|id| forest.get(id))
            .max_by_key(|l| l.blocks.len())
            .map(|l| l.blocks.clone())
            .unwrap_or_default(),
    };
    let mut loop_insts: u64 = 0;
    let mut total: u64 = 0;
    run_function_with(
        program,
        func,
        args,
        mem,
        sys,
        PROFILE_FUEL,
        |fid, block, _| {
            total += 1;
            if fid == func && loop_blocks.contains(&block) {
                loop_insts += 1;
            }
        },
    )?;
    Ok(HotnessReport {
        loop_instructions: loop_insts,
        total_instructions: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::LocalSys;
    use spice_workloads::{ChurnListWorkload, OtterConfig, OtterWorkload};

    #[test]
    fn stable_workload_profiles_as_highly_predictable() {
        let mut wl = ChurnListWorkload::new("stable", 1.0, 30, 10, 1);
        let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].bin, PredictabilityBin::High);
        assert!(verdicts[0].predictable_fraction > 0.8);
    }

    #[test]
    fn churning_workload_profiles_as_unpredictable() {
        let mut wl = ChurnListWorkload::new("churny", 0.0, 30, 10, 2);
        let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(matches!(
            verdicts[0].bin,
            PredictabilityBin::None | PredictabilityBin::Low
        ));
    }

    #[test]
    fn otter_profile_confirms_spice_candidate() {
        // The otter list mutates only slightly between invocations, so the
        // profiler should flag its loop as good-to-highly predictable — this
        // is exactly how the paper's §6 framework would auto-select it.
        let mut wl = OtterWorkload::new(OtterConfig {
            initial_len: 60,
            inserts_per_invocation: 2,
            invocations: 12,
            seed: 3,
        });
        let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(matches!(
            verdicts[0].bin,
            PredictabilityBin::Good | PredictabilityBin::High
        ));
    }

    #[test]
    fn hotness_of_a_list_walk_dominates_its_function() {
        let mut wl = ChurnListWorkload::new("hot", 1.0, 50, 2, 4);
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 1 << 20);
        let args = wl.init(&mut mem);
        let mut sys = LocalSys::new();
        let report = measure_hotness(
            &built.program,
            built.kernel,
            None,
            &args,
            &mut mem,
            &mut sys,
        )
        .unwrap();
        assert!(
            report.fraction() > 0.9,
            "fraction was {}",
            report.fraction()
        );
        assert!(report.total_instructions > report.loop_instructions);
    }

    #[test]
    fn sampling_reduces_observed_invocations() {
        let mut wl = ChurnListWorkload::new("sampled", 1.0, 20, 20, 5);
        let config = AnalyzerConfig {
            sampling_probability: 0.3,
            ..AnalyzerConfig::default()
        };
        let verdicts = profile_workload(&mut wl, config, None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].sampled_invocations < 20);
    }
}
