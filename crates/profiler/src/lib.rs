//! # spice-profiler — loop live-in predictability profiling (paper §6)
//!
//! The paper's value profiler decides which loops are worth
//! Spice-parallelizing by measuring, over a whole application run, how often
//! a loop's iteration live-ins repeat across consecutive invocations. It has
//! two components, both reproduced here:
//!
//! * an **instrumenter** ([`instrument::instrument_program`]) that finds
//!   candidate loops, strips reduction live-ins and inserts per-iteration
//!   recording hooks, and
//! * an **analyzer** ([`analyze::Analyzer`]) that turns the recorded live-in
//!   signatures into per-loop predictability verdicts, sampled per
//!   invocation and binned as in Figure 8.
//!
//! [`profile_workload`] glues the two to a [`spice_workloads::SpiceWorkload`]
//! driver, and [`measure_hotness`] provides the dynamic-instruction loop
//! hotness used in Table 2.
//!
//! For workloads that are whole miniature *applications* (serial phases plus
//! a hot loop, all in IR — e.g. `mcf_app`), [`measure_cycle_hotness`] drives
//! the full program, invocation by invocation, on a single core of the
//! timing simulator with per-`(function, block)` cycle attribution enabled,
//! and reports the target loop's share of all simulated cycles — Table 2's
//! `measured_hotness` column, measured rather than quoted.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod instrument;

use std::collections::{HashMap, HashSet};

use spice_ir::cfg::Cfg;
use spice_ir::interp::{run_function_with, FlatMemory, LocalSys, MemPort, SysPort};
use spice_ir::loops::LoopForest;
use spice_ir::{BlockId, FuncId, Program, TrapKind};
use spice_workloads::trace::{TraceInvocation, TraceIteration, WorkloadTrace};
use spice_workloads::SpiceWorkload;

pub use analyze::{Analyzer, AnalyzerConfig, LoopVerdict, PredictabilityBin, ProfilingSys};
pub use instrument::{instrument_program, Instrumentation, ProfiledLoop};

/// Default per-run instruction budget for profiling runs.
const PROFILE_FUEL: u64 = 200_000_000;

/// Profiles a workload: builds its program, instruments every candidate
/// loop, drives the workload's invocations sequentially and returns the
/// per-loop predictability verdicts.
///
/// # Errors
///
/// Propagates traps from the instrumented program (a workload bug).
pub fn profile_workload(
    workload: &mut dyn SpiceWorkload,
    config: AnalyzerConfig,
    max_invocations: Option<usize>,
) -> Result<Vec<LoopVerdict>, TrapKind> {
    let built = workload.build();
    let mut program = built.program;
    let _sites = instrument_program(&mut program);
    let mut mem = FlatMemory::for_program(&program, 1 << 22);
    let mut analyzer = Analyzer::new(config);
    let mut args = workload.init(&mut mem);
    let limit = max_invocations.unwrap_or(workload.invocations());
    for inv in 0..limit {
        analyzer.new_invocation();
        {
            let mut sys = ProfilingSys::new(&mut analyzer);
            run_function_with(
                &program,
                built.kernel,
                &args,
                &mut mem,
                &mut sys,
                PROFILE_FUEL,
                |_, _, _| {},
            )?;
        }
        match workload.next_invocation(&mut mem, inv) {
            Some(a) => args = a,
            None => break,
        }
    }
    analyzer.exit_program();
    Ok(analyzer.verdicts())
}

/// Records a workload's behaviour trace: builds and instruments its program
/// exactly like [`profile_workload`], drives every invocation sequentially,
/// and captures the raw per-iteration live-in tuples of the **hottest
/// profile site** (the one with the most recorded events over the whole
/// run — multi-loop programs like `mcf_app` carry several hooks).
///
/// The result is the §6 profiler's input signal made portable: replaying or
/// re-analyzing the trace offline reproduces the predictability the live
/// analyzer would have measured, without re-executing the driver.
///
/// # Errors
///
/// Propagates traps from the instrumented program (a workload bug).
pub fn record_workload_trace(
    workload: &mut dyn SpiceWorkload,
    max_invocations: Option<usize>,
) -> Result<WorkloadTrace, TrapKind> {
    let built = workload.build();
    let mut program = built.program;
    let _sites = instrument_program(&mut program);
    let mut mem = FlatMemory::for_program(&program, 1 << 22);
    let mut args = workload.init(&mut mem);
    let limit = max_invocations.unwrap_or(workload.invocations());
    // Per invocation, per site: the recorded key sequence.
    let mut recorded: Vec<HashMap<u32, Vec<Vec<i64>>>> = Vec::new();
    for inv in 0..limit {
        let mut sys = LocalSys::new();
        run_function_with(
            &program,
            built.kernel,
            &args,
            &mut mem,
            &mut sys,
            PROFILE_FUEL,
            |_, _, _| {},
        )?;
        let mut by_site: HashMap<u32, Vec<Vec<i64>>> = HashMap::new();
        for (site, values) in sys.profile_events() {
            by_site.entry(site).or_default().push(values.to_vec());
        }
        recorded.push(by_site);
        match workload.next_invocation(&mut mem, inv) {
            Some(a) => args = a,
            None => break,
        }
    }
    // The hot site: most events over the run; lowest id breaks ties so the
    // choice is deterministic.
    let mut tally: HashMap<u32, usize> = HashMap::new();
    for by_site in &recorded {
        for (site, keys) in by_site {
            *tally.entry(*site).or_insert(0) += keys.len();
        }
    }
    let mut totals: Vec<(u32, usize)> = tally.into_iter().collect();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let site = totals.first().map_or(0, |(s, _)| *s);
    let invocations = recorded
        .into_iter()
        .map(|mut by_site| TraceInvocation {
            iterations: by_site
                .remove(&site)
                .unwrap_or_default()
                .into_iter()
                .map(|key| TraceIteration { key, write: None })
                .collect(),
        })
        .collect();
    Ok(WorkloadTrace {
        name: workload.name().to_string(),
        loop_name: workload.loop_name().to_string(),
        site,
        invocations,
    })
}

/// Re-runs the §6 analysis **offline** over a recorded trace: the keys are
/// fed through the same [`Analyzer`] (hashing, per-invocation sampling,
/// threshold, denominator rules) that live profiling uses, so a trace and
/// the run it was recorded from yield the same verdict by construction.
///
/// Returns `None` when the trace's selected site recorded no events at all
/// (every invocation empty).
#[must_use]
pub fn analyze_trace(trace: &WorkloadTrace, config: AnalyzerConfig) -> Option<LoopVerdict> {
    let mut analyzer = Analyzer::new(config);
    for inv in &trace.invocations {
        analyzer.new_invocation();
        let mut sys = ProfilingSys::new(&mut analyzer);
        for it in &inv.iterations {
            sys.profile(trace.site, &it.key);
        }
    }
    analyzer.exit_program();
    analyzer
        .verdicts()
        .into_iter()
        .find(|v| v.site == trace.site)
}

/// Dynamic-instruction hotness of a loop: the fraction of all retired
/// instructions of a run that belong to the loop rooted at `header`
/// (Table 2's "hotness" column, measured the way the paper's instrumenter
/// selects candidate loops — by dynamic instruction count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, serde::Deserialize)]
pub struct HotnessReport {
    /// Instructions retired inside the loop.
    pub loop_instructions: u64,
    /// Instructions retired in total.
    pub total_instructions: u64,
}

impl HotnessReport {
    /// Loop hotness in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.loop_instructions as f64 / self.total_instructions as f64
        }
    }
}

use serde::Serialize;

/// Measures the dynamic instruction counts of one run of `func`, attributing
/// instructions to the loop whose header is `header` (or to the function's
/// largest top-level loop when `header` is `None`).
///
/// # Errors
///
/// Propagates traps raised by the run.
pub fn measure_hotness(
    program: &Program,
    func: FuncId,
    header: Option<BlockId>,
    args: &[i64],
    mem: &mut impl MemPort,
    sys: &mut impl SysPort,
) -> Result<HotnessReport, TrapKind> {
    let f = program.func(func);
    let forest = LoopForest::of(f);
    let cfg = Cfg::new(f);
    let _ = &cfg;
    let loop_blocks: HashSet<BlockId> = match header {
        Some(h) => forest
            .loop_with_header(h)
            .map(|id| forest.get(id).blocks.clone())
            .unwrap_or_default(),
        None => forest
            .top_level()
            .into_iter()
            .map(|id| forest.get(id))
            .max_by_key(|l| l.blocks.len())
            .map(|l| l.blocks.clone())
            .unwrap_or_default(),
    };
    let mut loop_insts: u64 = 0;
    let mut total: u64 = 0;
    run_function_with(
        program,
        func,
        args,
        mem,
        sys,
        PROFILE_FUEL,
        |fid, block, _| {
            total += 1;
            if fid == func && loop_blocks.contains(&block) {
                loop_insts += 1;
            }
        },
    )?;
    Ok(HotnessReport {
        loop_instructions: loop_insts,
        total_instructions: total,
    })
}

/// Whole-program hotness of a loop, in *simulated cycles* (the measured
/// analogue of Table 2's "fraction of execution time" column): the cycles
/// attributed to the target loop's blocks over the cycles of the entire
/// program run, every invocation included — serial phases, calls and all.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleHotnessReport {
    /// Simulated cycles attributed to the target loop's blocks.
    pub loop_cycles: u64,
    /// Simulated cycles attributed to the whole program.
    pub total_cycles: u64,
    /// Per-function cycle totals (`(name, cycles)`), in function order.
    pub per_function: Vec<(String, u64)>,
}

impl CycleHotnessReport {
    /// Loop hotness in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.loop_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Measures whole-program cycle hotness of `workload`'s target loop: the
/// workload's full program (kernel function plus whatever serial-phase
/// functions it calls) runs sequentially on one core of a machine built
/// from `config`, with [`spice_sim::CycleAttribution`] enabled, over every
/// invocation the driver produces. Every invocation's return value is
/// checked against the workload's host-computed expectation, so the profile
/// cannot silently come from a mis-executing program.
///
/// # Errors
///
/// Returns a description of the first simulation failure or result
/// mismatch.
pub fn measure_cycle_hotness(
    workload: &mut dyn SpiceWorkload,
    config: spice_sim::MachineConfig,
) -> Result<CycleHotnessReport, String> {
    let built = workload.build();
    let kernel = built.kernel;
    // Identify the target loop's blocks before the program moves into the
    // machine (same selection rule as `measure_hotness`).
    let f = built.program.func(kernel);
    let forest = LoopForest::of(f);
    let loop_blocks: HashSet<BlockId> = match built.loop_header_hint {
        Some(h) => forest
            .loop_with_header(h)
            .map(|id| forest.get(id).blocks.clone())
            .unwrap_or_default(),
        None => forest
            .top_level()
            .into_iter()
            .map(|id| forest.get(id))
            .max_by_key(|l| l.blocks.len())
            .map(|l| l.blocks.clone())
            .unwrap_or_default(),
    };
    if loop_blocks.is_empty() {
        return Err(format!("{}: kernel has no target loop", workload.name()));
    }

    let mut machine = spice_sim::Machine::new(config.with_cores(1), built.program);
    machine.enable_cycle_attribution();
    let mut args = workload.init(machine.mem_mut());
    let mut inv = 0usize;
    loop {
        let expected = workload.expected_result(machine.mem());
        machine.clear_threads();
        machine.reset_cycle_counter();
        machine
            .spawn(0, kernel, &args)
            .map_err(|e| format!("{}: {e}", workload.name()))?;
        machine
            .run()
            .map_err(|e| format!("{}: invocation {inv}: {e}", workload.name()))?;
        if let Some(e) = expected {
            let got = machine.return_value(0);
            if got != Some(e) {
                return Err(format!(
                    "{}: invocation {inv} returned {got:?}, expected {e}",
                    workload.name()
                ));
            }
        }
        match workload.next_invocation(machine.mem_mut(), inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }

    let attr = machine
        .cycle_attribution()
        .expect("attribution was enabled");
    let loop_cycles = loop_blocks
        .iter()
        .map(|&b| attr.block_cycles(kernel, b))
        .sum();
    let per_function = machine
        .program()
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), attr.func_cycles(FuncId(i as u32))))
        .collect();
    Ok(CycleHotnessReport {
        loop_cycles,
        total_cycles: attr.total_cycles(),
        per_function,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::LocalSys;
    use spice_workloads::{ChurnListWorkload, OtterConfig, OtterWorkload};

    #[test]
    fn stable_workload_profiles_as_highly_predictable() {
        let mut wl = ChurnListWorkload::new("stable", 1.0, 30, 10, 1);
        let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].bin, PredictabilityBin::High);
        assert!(verdicts[0].predictable_fraction > 0.8);
    }

    #[test]
    fn churning_workload_profiles_as_unpredictable() {
        let mut wl = ChurnListWorkload::new("churny", 0.0, 30, 10, 2);
        let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(matches!(
            verdicts[0].bin,
            PredictabilityBin::None | PredictabilityBin::Low
        ));
    }

    #[test]
    fn otter_profile_confirms_spice_candidate() {
        // The otter list mutates only slightly between invocations, so the
        // profiler should flag its loop as good-to-highly predictable — this
        // is exactly how the paper's §6 framework would auto-select it.
        let mut wl = OtterWorkload::new(OtterConfig {
            initial_len: 60,
            inserts_per_invocation: 2,
            invocations: 12,
            seed: 3,
        });
        let verdicts = profile_workload(&mut wl, AnalyzerConfig::default(), None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(matches!(
            verdicts[0].bin,
            PredictabilityBin::Good | PredictabilityBin::High
        ));
    }

    #[test]
    fn hotness_of_a_list_walk_dominates_its_function() {
        let mut wl = ChurnListWorkload::new("hot", 1.0, 50, 2, 4);
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 1 << 20);
        let args = wl.init(&mut mem);
        let mut sys = LocalSys::new();
        let report = measure_hotness(
            &built.program,
            built.kernel,
            None,
            &args,
            &mut mem,
            &mut sys,
        )
        .unwrap();
        assert!(
            report.fraction() > 0.9,
            "fraction was {}",
            report.fraction()
        );
        assert!(report.total_instructions > report.loop_instructions);
    }

    #[test]
    fn cycle_hotness_of_a_pure_kernel_is_high_and_checked() {
        // A workload that is all loop: nearly every simulated cycle must be
        // attributed to the loop's blocks, and the per-function rollup must
        // cover the whole program.
        let mut wl = ChurnListWorkload::new("cyc", 1.0, 40, 3, 6);
        let report =
            measure_cycle_hotness(&mut wl, spice_sim::MachineConfig::test_tiny(1)).unwrap();
        assert!(
            report.fraction() > 0.8,
            "fraction was {}",
            report.fraction()
        );
        assert!(report.total_cycles > report.loop_cycles);
        assert_eq!(report.per_function.len(), 1);
        let per_fn_total: u64 = report.per_function.iter().map(|(_, c)| c).sum();
        assert_eq!(per_fn_total, report.total_cycles);
    }

    #[test]
    fn sampling_reduces_observed_invocations() {
        let mut wl = ChurnListWorkload::new("sampled", 1.0, 20, 20, 5);
        let config = AnalyzerConfig {
            sampling_probability: 0.3,
            ..AnalyzerConfig::default()
        };
        let verdicts = profile_workload(&mut wl, config, None).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].sampled_invocations < 20);
    }

    #[test]
    fn recorded_traces_reanalyze_to_the_live_verdict() {
        // The recorder captures the same signal the live analyzer consumes,
        // so feeding the recording back through `analyze_trace` must
        // reproduce the live profile exactly — the §6 figure derived from
        // recorded values is the measured figure.
        for (label, p) in [("stable", 1.0), ("half", 0.5), ("churny", 0.0)] {
            let mut live = ChurnListWorkload::new(label, p, 24, 8, 11);
            let verdicts = profile_workload(&mut live, AnalyzerConfig::default(), None).unwrap();
            assert_eq!(verdicts.len(), 1);

            let mut recorded = ChurnListWorkload::new(label, p, 24, 8, 11);
            let trace = record_workload_trace(&mut recorded, None).unwrap();
            assert_eq!(trace.validate(), Ok(()));
            assert_eq!(trace.invocations.len(), 8);
            let offline = analyze_trace(&trace, AnalyzerConfig::default()).unwrap();
            assert_eq!(offline.sampled_invocations, verdicts[0].sampled_invocations);
            assert_eq!(
                offline.predictable_invocations,
                verdicts[0].predictable_invocations
            );
            assert_eq!(offline.total_iterations, verdicts[0].total_iterations);
            assert_eq!(offline.bin, verdicts[0].bin, "{label}");
        }
    }

    #[test]
    fn recorder_picks_the_hot_site_of_a_multi_loop_program() {
        // Otter's kernel carries more than one candidate loop; the recorder
        // must deterministically keep the one with the most events.
        let config = OtterConfig {
            initial_len: 24,
            invocations: 4,
            ..OtterConfig::default()
        };
        let mut wl = OtterWorkload::new(config.clone());
        let trace = record_workload_trace(&mut wl, None).unwrap();
        assert_eq!(trace.validate(), Ok(()));
        assert!(trace.total_iterations() > 0);
        let again = record_workload_trace(&mut OtterWorkload::new(config), None).unwrap();
        assert_eq!(
            trace.checksum(),
            again.checksum(),
            "recording is a pure function"
        );
    }
}
