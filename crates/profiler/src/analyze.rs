//! The profiler's analyzer (paper §6.2) and predictability binning (§6.3).
//!
//! For every profiled loop, the analyzer collects the live-in tuple of each
//! iteration (as a signature), keeps the signature set of the previous
//! invocation, and declares an invocation *predictable* when more than a
//! threshold fraction (0.5 in the paper) of its iterations' signatures were
//! already present in the previous invocation. Loops are then binned by the
//! percentage of their invocations that are predictable: low (1–25%),
//! average (26–50%), good (51–75%) and high (76–100%).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use spice_ir::interp::SysPort;
use spice_ir::BlockId;

/// Predictability bins of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictabilityBin {
    /// No invocation was predictable (rendered as a missing bar).
    None,
    /// 1–25% of invocations predictable.
    Low,
    /// 26–50%.
    Average,
    /// 51–75%.
    Good,
    /// 76–100%.
    High,
}

impl PredictabilityBin {
    /// Bins a fraction of predictable invocations.
    #[must_use]
    pub fn from_fraction(f: f64) -> Self {
        if f <= 0.0 {
            PredictabilityBin::None
        } else if f <= 0.25 {
            PredictabilityBin::Low
        } else if f <= 0.50 {
            PredictabilityBin::Average
        } else if f <= 0.75 {
            PredictabilityBin::Good
        } else {
            PredictabilityBin::High
        }
    }

    /// Label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredictabilityBin::None => "none",
            PredictabilityBin::Low => "low",
            PredictabilityBin::Average => "average",
            PredictabilityBin::Good => "good",
            PredictabilityBin::High => "high",
        }
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Fraction of an invocation's iterations whose live-ins must repeat for
    /// the invocation to count as predictable (paper: 0.5).
    pub iteration_threshold: f64,
    /// Probability with which an invocation is sampled (paper: `P(L)`,
    /// used to bound profiling overhead).
    pub sampling_probability: f64,
    /// RNG seed for sampling decisions.
    pub seed: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            iteration_threshold: 0.5,
            sampling_probability: 1.0,
            seed: 0xA17A,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SiteState {
    previous_signatures: Option<HashSet<u64>>,
    current: Vec<u64>,
    sampled_invocations: u64,
    predictable_invocations: u64,
    total_iterations: u64,
}

/// Per-loop profiling verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopVerdict {
    /// Profile-hook site identifier.
    pub site: u32,
    /// Invocations that were sampled.
    pub sampled_invocations: u64,
    /// Of those, how many were predictable.
    pub predictable_invocations: u64,
    /// Total iterations observed.
    pub total_iterations: u64,
    /// Fraction of sampled invocations that were predictable.
    pub predictable_fraction: f64,
    /// The Figure 8 bin.
    pub bin: PredictabilityBin,
}

/// The analyzer: collects per-iteration live-in signatures (via the
/// [`SysPort`] profile hook) and produces per-loop verdicts.
#[derive(Debug)]
pub struct Analyzer {
    config: AnalyzerConfig,
    rng: StdRng,
    sites: HashMap<u32, SiteState>,
    sampling_current: bool,
}

impl Analyzer {
    /// Creates an analyzer.
    #[must_use]
    pub fn new(config: AnalyzerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Analyzer {
            config,
            rng,
            sites: HashMap::new(),
            sampling_current: true,
        }
    }

    /// Marks the start of a new loop invocation (paper: the
    /// `new_invocation` call inserted in the loop preheader). Decides whether
    /// this invocation is sampled.
    pub fn new_invocation(&mut self) {
        // Close out the previous invocation for every site first.
        self.finish_invocation();
        self.sampling_current = self.rng.gen_bool(self.config.sampling_probability);
    }

    /// Marks the end of the program (paper: `exit_program`); flushes the last
    /// invocation.
    pub fn exit_program(&mut self) {
        self.finish_invocation();
    }

    fn finish_invocation(&mut self) {
        for state in self.sites.values_mut() {
            if state.current.is_empty() {
                continue;
            }
            state.sampled_invocations += 1;
            state.total_iterations += state.current.len() as u64;
            if let Some(prev) = &state.previous_signatures {
                let hits = state.current.iter().filter(|s| prev.contains(*s)).count();
                let f = hits as f64 / state.current.len() as f64;
                if f > self.config.iteration_threshold {
                    state.predictable_invocations += 1;
                }
            }
            state.previous_signatures = Some(state.current.iter().copied().collect());
            state.current.clear();
        }
    }

    fn record(&mut self, site: u32, values: &[i64]) {
        if !self.sampling_current {
            return;
        }
        let mut h = DefaultHasher::new();
        values.hash(&mut h);
        self.sites.entry(site).or_default().current.push(h.finish());
    }

    /// Produces the per-loop verdicts.
    #[must_use]
    pub fn verdicts(&self) -> Vec<LoopVerdict> {
        let mut out: Vec<LoopVerdict> = self
            .sites
            .iter()
            .map(|(site, s)| {
                // The very first sampled invocation has no predecessor to
                // compare against, so it is excluded from the denominator.
                let denom = s.sampled_invocations.saturating_sub(1).max(1);
                let f = s.predictable_invocations as f64 / denom as f64;
                LoopVerdict {
                    site: *site,
                    sampled_invocations: s.sampled_invocations,
                    predictable_invocations: s.predictable_invocations,
                    total_iterations: s.total_iterations,
                    predictable_fraction: f,
                    bin: PredictabilityBin::from_fraction(f),
                }
            })
            .collect();
        out.sort_by_key(|v| v.site);
        out
    }
}

/// A [`SysPort`] that feeds profile hooks into an [`Analyzer`] while
/// supporting ordinary channel traffic locally (single-threaded profiling
/// runs never block).
#[derive(Debug)]
pub struct ProfilingSys<'a> {
    /// The analyzer receiving the hook events.
    pub analyzer: &'a mut Analyzer,
    channels: HashMap<i64, Vec<i64>>,
}

impl<'a> ProfilingSys<'a> {
    /// Wraps an analyzer.
    #[must_use]
    pub fn new(analyzer: &'a mut Analyzer) -> Self {
        ProfilingSys {
            analyzer,
            channels: HashMap::new(),
        }
    }
}

impl SysPort for ProfilingSys<'_> {
    fn send(&mut self, chan: i64, value: i64) {
        self.channels.entry(chan).or_default().push(value);
    }

    fn try_recv(&mut self, chan: i64) -> Option<i64> {
        let q = self.channels.get_mut(&chan)?;
        if q.is_empty() {
            None
        } else {
            Some(q.remove(0))
        }
    }

    fn resteer(&mut self, _core: i64, _target: BlockId) {}

    fn profile(&mut self, site: u32, values: &[i64]) {
        self.analyzer.record(site, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(analyzer: &mut Analyzer, site: u32, invocations: &[Vec<i64>]) {
        for inv in invocations {
            analyzer.new_invocation();
            for v in inv {
                analyzer.record(site, &[*v]);
            }
        }
        analyzer.exit_program();
    }

    #[test]
    fn stable_loop_is_highly_predictable() {
        let mut a = Analyzer::new(AnalyzerConfig::default());
        let inv: Vec<i64> = (0..20).collect();
        feed(&mut a, 0, &[inv.clone(), inv.clone(), inv.clone(), inv]);
        let v = &a.verdicts()[0];
        assert_eq!(v.sampled_invocations, 4);
        assert_eq!(v.predictable_invocations, 3);
        assert_eq!(v.bin, PredictabilityBin::High);
        assert_eq!(v.total_iterations, 80);
    }

    #[test]
    fn fully_churning_loop_is_unpredictable() {
        let mut a = Analyzer::new(AnalyzerConfig::default());
        let invs: Vec<Vec<i64>> = (0..4)
            .map(|k| ((k * 100)..(k * 100 + 20)).collect())
            .collect();
        feed(&mut a, 3, &invs);
        let v = &a.verdicts()[0];
        assert_eq!(v.predictable_invocations, 0);
        assert_eq!(v.bin, PredictabilityBin::None);
    }

    #[test]
    fn half_churn_sits_in_a_middle_bin() {
        let mut a = Analyzer::new(AnalyzerConfig::default());
        // Alternate: stable, rebuilt, stable, rebuilt ... relative to the
        // previous invocation.
        let stable: Vec<i64> = (0..20).collect();
        let other: Vec<i64> = (1000..1020).collect();
        feed(
            &mut a,
            1,
            &[
                stable.clone(),
                stable.clone(),
                other.clone(),
                other,
                stable.clone(),
                stable,
            ],
        );
        let v = &a.verdicts()[0];
        // Predictable transitions: 1->2 (stable), 3->4 (other), 5->6 (stable)
        // = 3 of 5 comparisons.
        assert_eq!(v.sampled_invocations, 6);
        assert_eq!(v.predictable_invocations, 3);
        assert_eq!(v.bin, PredictabilityBin::Good);
    }

    #[test]
    fn sampling_probability_skips_invocations() {
        let mut a = Analyzer::new(AnalyzerConfig {
            sampling_probability: 0.0,
            ..AnalyzerConfig::default()
        });
        // new_invocation decides sampling; with probability 0 nothing records.
        a.new_invocation();
        a.record(0, &[1]);
        a.exit_program();
        assert!(a.verdicts().is_empty());
    }

    #[test]
    fn bins_cover_their_ranges() {
        assert_eq!(
            PredictabilityBin::from_fraction(0.0),
            PredictabilityBin::None
        );
        assert_eq!(
            PredictabilityBin::from_fraction(0.1),
            PredictabilityBin::Low
        );
        assert_eq!(
            PredictabilityBin::from_fraction(0.3),
            PredictabilityBin::Average
        );
        assert_eq!(
            PredictabilityBin::from_fraction(0.6),
            PredictabilityBin::Good
        );
        assert_eq!(
            PredictabilityBin::from_fraction(0.9),
            PredictabilityBin::High
        );
        assert_eq!(PredictabilityBin::High.label(), "high");
    }
}
