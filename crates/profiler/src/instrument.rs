//! The profiler's instrumenter (paper §6.1).
//!
//! Given a program, the instrumenter finds the loops worth profiling,
//! computes their loop-carried live-ins, removes the live-ins a reduction
//! transformation would handle, and inserts a [`spice_ir::Inst::ProfileHook`]
//! at the top of every candidate loop's header so that each iteration
//! reports the current live-in tuple to the attached analyzer.

use serde::{Deserialize, Serialize};

use spice_ir::cfg::Cfg;
use spice_ir::dom::DomTree;
use spice_ir::liveness::{loop_live_ins, Liveness};
use spice_ir::loops::LoopForest;
use spice_ir::reduction::detect_reductions;
use spice_ir::{BlockId, FuncId, Inst, Program, Reg};

/// One instrumented loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfiledLoop {
    /// Profile-hook site identifier carried by the emitted hook.
    pub site: u32,
    /// Function containing the loop.
    pub func: FuncId,
    /// Loop header block (in the *uninstrumented* numbering, which the
    /// instrumenter preserves).
    pub header: BlockId,
    /// Nesting depth of the loop (1 = outermost).
    pub depth: usize,
    /// The live-in registers recorded at each iteration (loop-carried,
    /// reductions removed) — the values whose cross-invocation
    /// predictability the analyzer measures.
    pub recorded: Vec<Reg>,
}

/// Result of instrumenting a program.
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    /// The instrumented loops, indexed by site id.
    pub loops: Vec<ProfiledLoop>,
}

impl Instrumentation {
    /// Looks up a profiled loop by site id.
    #[must_use]
    pub fn site(&self, site: u32) -> Option<&ProfiledLoop> {
        self.loops.iter().find(|l| l.site == site)
    }
}

/// Instruments every candidate loop of every function of `program` in place
/// and returns the site table.
///
/// Candidate loops are those with at least one loop-carried live-in left
/// after reduction removal — loops without one are DOALL-able (or reducible)
/// and need no value speculation, so the paper's profiler skips them.
#[must_use]
pub fn instrument_program(program: &mut Program) -> Instrumentation {
    let mut out = Instrumentation::default();
    let mut next_site: u32 = 0;
    for fid in 0..program.funcs.len() {
        let func_id = FuncId(fid as u32);
        // Analyse on an immutable snapshot, then mutate.
        let plan: Vec<(BlockId, usize, Vec<Reg>)> = {
            let f = program.func(func_id);
            let cfg = Cfg::new(f);
            let dom = DomTree::new(&cfg);
            let forest = LoopForest::new(f, &cfg, &dom);
            let live = Liveness::new(f, &cfg);
            let mut plan = Vec::new();
            for (_, l) in forest.iter() {
                let lli = loop_live_ins(f, &cfg, &live, l);
                let reds = detect_reductions(f, l, &lli);
                let covered = reds.covered_regs();
                let recorded: Vec<Reg> = lli
                    .carried
                    .iter()
                    .copied()
                    .filter(|r| !covered.contains(r))
                    .collect();
                if !recorded.is_empty() {
                    plan.push((l.header, l.depth, recorded));
                }
            }
            plan
        };
        for (header, depth, recorded) in plan {
            let site = next_site;
            next_site += 1;
            let f = program.func_mut(func_id);
            f.block_mut(header).insts.insert(
                0,
                Inst::ProfileHook {
                    site,
                    regs: recorded.clone(),
                },
            );
            out.loops.push(ProfiledLoop {
                site,
                func: func_id,
                header,
                depth,
                recorded,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::interp::{run_function_with, FlatMemory, LocalSys};
    use spice_ir::{BinOp, Operand};

    fn list_walk_program() -> (Program, FuncId) {
        let mut b = FunctionBuilder::new("walk");
        let head = b.param();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 0);
        let s = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s);
        let n = b.load(c, 1);
        b.copy_into(c, n);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        (p, f)
    }

    #[test]
    fn instrumenter_records_only_non_reduction_live_ins() {
        let (mut p, f) = list_walk_program();
        let inst = instrument_program(&mut p);
        assert_eq!(inst.loops.len(), 1);
        let site = &inst.loops[0];
        assert_eq!(site.func, f);
        // Only the pointer is recorded; `sum` is a reduction.
        assert_eq!(site.recorded.len(), 1);
        assert!(inst.site(0).is_some());
        assert!(inst.site(9).is_none());
        // The hook landed at the top of the header block.
        let hdr = p.func(f).block(site.header);
        assert!(matches!(hdr.insts[0], Inst::ProfileHook { .. }));
    }

    #[test]
    fn instrumented_program_reports_one_tuple_per_iteration() {
        let (mut p, f) = list_walk_program();
        let _inst = instrument_program(&mut p);
        let mut mem = FlatMemory::new(8 * 1024);
        // Three-node list at 2000.
        for (i, v) in [5i64, 6, 7].iter().enumerate() {
            let a = 2000 + 2 * i as i64;
            mem.write(a, *v).unwrap();
            mem.write(a + 1, if i < 2 { a + 2 } else { 0 }).unwrap();
        }
        let mut sys = LocalSys::new();
        run_function_with(&p, f, &[2000], &mut mem, &mut sys, 100_000, |_, _, _| {}).unwrap();
        // The hook fires once per header entry: 3 iterations + the final
        // (exiting) header visit.
        let events = sys.profile_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].1, [2000]);
        assert_eq!(events[1].1, [2002]);
        assert_eq!(events[3].1, [0]);
    }

    #[test]
    fn loop_free_function_gets_no_sites() {
        let mut b = FunctionBuilder::new("straight");
        let x = b.param();
        let y = b.binop(BinOp::Add, x, 1i64);
        b.ret(Some(Operand::Reg(y)));
        let mut p = Program::new();
        p.add_func(b.finish());
        assert!(instrument_program(&mut p).loops.is_empty());
    }
}
