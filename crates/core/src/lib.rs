//! # spice-core — the Spice transformation and its value predictor
//!
//! This crate implements the primary contribution of the CGO 2008 paper
//! *"Spice: Speculative Parallel Iteration Chunk Execution"* (Raman,
//! Vachharajani, Rangan, August): a software-only speculative
//! parallelization that splits a loop's iteration space into chunks, starts
//! each chunk from loop live-in values *memoized during the previous
//! invocation of the loop*, and falls back to the non-speculative main
//! thread whenever a memoized value no longer appears.
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`analysis`] | §4, Algorithm 1 steps 2–4 | loop live-in classification, reduction removal, the speculated set `S` |
//! | [`transform`] | §4, Algorithm 1 | the code-generating transformation: worker creation, live-in/out communication, detection, recovery, memoization |
//! | [`predictor`] | §4, Algorithm 2 | the speculated-values array layout, the reference planner, and read-only host mirrors of what the on-core centralized step wrote |
//! | [`valuepred`] | §2.2, §7 | last-value / stride / increment-trace predictors and the Spice memoization criterion, for accuracy comparisons |
//! | [`baseline`] | §2 | the `t1`/`t2`/`t3` analytic model of TLS with and without value prediction, and schedule rendering for Figures 2/3/5 |
//! | [`pipeline`] | §5 | invocation-by-invocation execution of a transformed loop on the `spice-sim` machine |
//! | [`backend`] | — | the simulator [`spice_ir::exec::ExecutionBackend`] and by-value backend selection (sim vs. native threads) |
//!
//! ## Quick example
//!
//! ```
//! use spice_core::analysis::LoopAnalysis;
//! use spice_core::pipeline::SpiceRunner;
//! use spice_core::transform::{SpiceOptions, SpiceTransform};
//! use spice_ir::builder::FunctionBuilder;
//! use spice_ir::{BinOp, Operand, Program};
//! use spice_sim::{Machine, MachineConfig};
//!
//! // Build a linked-list minimum loop (the paper's Figure 1a), Spice it with
//! // two threads and run one invocation on the simulated machine.
//! let mut program = Program::new();
//! let nodes = program.add_global("nodes", 64);
//! let mut b = FunctionBuilder::new("find_lightest");
//! let head = b.param();
//! let pre = b.new_block();
//! let header = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! let c = b.copy(head);
//! let wm = b.copy(i64::MAX);
//! b.br(pre);
//! b.switch_to(pre);
//! b.br(header);
//! b.switch_to(header);
//! let done = b.binop(BinOp::Eq, c, 0i64);
//! b.cond_br(done, exit, body);
//! b.switch_to(body);
//! let w = b.load(c, 0);
//! let better = b.binop(BinOp::Lt, w, wm);
//! let nwm = b.select(better, w, wm);
//! b.copy_into(wm, nwm);
//! let next = b.load(c, 1);
//! b.copy_into(c, next);
//! b.br(header);
//! b.switch_to(exit);
//! b.ret(Some(Operand::Reg(wm)));
//! let func = program.add_func(b.finish());
//!
//! let analysis = LoopAnalysis::analyze_outermost(&program, func).unwrap();
//! let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(2, 3))
//!     .apply(&mut program, &analysis)
//!     .unwrap();
//!
//! let mut machine = Machine::new(MachineConfig::test_tiny(2), program);
//! // Three-node list: weights 9, 4, 7.
//! for (i, w) in [9i64, 4, 7].iter().enumerate() {
//!     let a = nodes + 2 * i as i64;
//!     machine.mem_mut().write(a, *w).unwrap();
//!     let next = if i < 2 { a + 2 } else { 0 };
//!     machine.mem_mut().write(a + 1, next).unwrap();
//! }
//! let mut runner = SpiceRunner::new(spice);
//! let report = runner.run_invocation(&mut machine, &[nodes]).unwrap();
//! assert_eq!(report.return_value, Some(4));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod backend;
pub mod baseline;
pub mod pipeline;
pub mod predictor;
pub mod prepared;
pub mod transform;
pub mod valuepred;

pub use analysis::{Applicability, LoopAnalysis};
pub use backend::{make_backend, make_backend_with, BackendChoice, SimBackend};
pub use pipeline::{run_sequential, InvocationReport, PipelineError, SpiceRunner};
pub use predictor::{Assignment, PredictorLayout, PredictorOptions};
pub use prepared::PreparedProgram;
pub use transform::{SpiceOptions, SpiceParallelLoop, SpiceTransform, TransformError};
