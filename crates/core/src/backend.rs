//! The simulator [`ExecutionBackend`] and backend selection by value.
//!
//! [`SimBackend`] packages the whole timing-model path — loop analysis, the
//! Spice code-generating transformation, a [`Machine`] and a
//! [`SpiceRunner`] — behind the shared [`ExecutionBackend`] API from
//! `spice-ir`, so consumers can run a workload on the cycle-accurate Table 1
//! machine or on real OS threads ([`NativeLoopBackend`]) through one call
//! site. [`BackendChoice`] / [`make_backend`] are the by-value selector the
//! workload suite and the experiment harness use.

use spice_ir::exec::{BackendError, ExecutionBackend, ExecutionReport, LoadOptions};
use spice_ir::interp::FlatMemory;
use spice_ir::{FuncId, Program};
use spice_runtime::NativeLoopBackend;
use spice_sim::{Machine, MachineConfig};

use crate::pipeline::{PipelineError, SpiceRunner};
use crate::predictor::PredictorOptions;
use crate::prepared::PreparedProgram;

/// The timing-simulator execution backend: analysis + transformation +
/// cycle-stepped simulation, carrying the centralized predictor across
/// invocations.
#[derive(Debug)]
pub struct SimBackend {
    config: MachineConfig,
    threads: usize,
    predictor: PredictorOptions,
    loaded: Option<SimLoaded>,
}

#[derive(Debug)]
struct SimLoaded {
    machine: Machine,
    runner: SpiceRunner,
}

impl SimBackend {
    /// Creates a backend simulating the paper's Table 1 machine with
    /// `threads` cores.
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        SimBackend::with_config(MachineConfig::itanium2_cmp(), threads)
    }

    /// Creates a backend with the reduced test machine (small caches, short
    /// latencies) — fast enough for unit tests.
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`.
    #[must_use]
    pub fn tiny(threads: usize) -> Self {
        SimBackend::with_config(MachineConfig::test_tiny(threads), threads)
    }

    /// Creates a backend simulating an arbitrary machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`.
    #[must_use]
    pub fn with_config(config: MachineConfig, threads: usize) -> Self {
        assert!(threads >= 2, "Spice needs at least two threads");
        SimBackend {
            config,
            threads,
            predictor: PredictorOptions::default(),
            loaded: None,
        }
    }

    /// Overrides the predictor options (re-memoization, load balancing, …).
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorOptions) -> Self {
        self.predictor = predictor;
        self
    }

    /// A backend already loaded from a shared preparation — the sweep path:
    /// the preparation is built once, and every job instantiates its own
    /// machine and runner over the shared decoded program.
    ///
    /// # Panics
    ///
    /// Panics if `prepared` is not a Spice preparation
    /// ([`PreparedProgram::spice`]).
    #[must_use]
    pub fn from_prepared(prepared: &PreparedProgram) -> Self {
        let mut backend = SimBackend {
            config: prepared.config().clone(),
            threads: prepared.threads(),
            predictor: PredictorOptions::default(),
            loaded: None,
        };
        backend.load_prepared(prepared);
        backend
    }

    /// Loads this backend from a shared preparation (see
    /// [`SimBackend::from_prepared`]).
    ///
    /// # Panics
    ///
    /// Panics if `prepared` is not a Spice preparation.
    pub fn load_prepared(&mut self, prepared: &PreparedProgram) {
        // The runner exempts the predictor-array range from conflict
        // detection on every invocation (see `SpiceRunner::run_invocation`).
        let machine = prepared.machine();
        let runner = prepared
            .runner()
            .expect("load_prepared needs a Spice preparation");
        self.threads = prepared.threads();
        self.loaded = Some(SimLoaded { machine, runner });
    }

    /// The runner driving the loaded program, for stats inspection.
    #[must_use]
    pub fn runner(&self) -> Option<&SpiceRunner> {
        self.loaded.as_ref().map(|l| &l.runner)
    }

    /// The threshold assignments the on-core centralized predictor step
    /// wrote for the most recent invocation, reconstructed from simulated
    /// memory (ordered by `sva` row). `None` before `load`.
    #[must_use]
    pub fn last_plan(&self) -> Option<&[crate::predictor::Assignment]> {
        self.loaded.as_ref().map(|l| l.runner.last_plan())
    }

    /// The loaded machine, for observability drivers (tracing, snapshots,
    /// `run_until`). `None` before `load`.
    #[must_use]
    pub fn machine(&self) -> Option<&Machine> {
        self.loaded.as_ref().map(|l| &l.machine)
    }

    /// Mutable access to the loaded machine (enable tracing/snapshots,
    /// watch addresses). `None` before `load`.
    pub fn machine_mut(&mut self) -> Option<&mut Machine> {
        self.loaded.as_mut().map(|l| &mut l.machine)
    }

    /// Splits the loaded backend into its runner and machine for manual
    /// invocation driving ([`SpiceRunner::start_invocation`] /
    /// [`Machine::run_until`] / [`SpiceRunner::finish_invocation`]).
    /// `None` before `load`.
    pub fn parts_mut(&mut self) -> Option<(&mut SpiceRunner, &mut Machine)> {
        self.loaded
            .as_mut()
            .map(|l| (&mut l.runner, &mut l.machine))
    }
}

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn load(
        &mut self,
        program: Program,
        kernel: FuncId,
        options: LoadOptions,
    ) -> Result<(), BackendError> {
        // One preparation logic for every caller: a direct `load` builds a
        // PreparedProgram and instantiates it once; a sweep builds the same
        // PreparedProgram once and instantiates it per job — so the two
        // paths cannot drift apart.
        let prepared = PreparedProgram::spice(
            self.config.clone(),
            self.threads,
            self.predictor,
            program,
            kernel,
            options,
        )?;
        self.load_prepared(&prepared);
        Ok(())
    }

    fn mem(&self) -> &FlatMemory {
        self.loaded.as_ref().expect("load() first").machine.mem()
    }

    fn mem_mut(&mut self) -> &mut FlatMemory {
        self.loaded
            .as_mut()
            .expect("load() first")
            .machine
            .mem_mut()
    }

    fn run_invocation(&mut self, args: &[i64]) -> Result<ExecutionReport, BackendError> {
        let loaded = self.loaded.as_mut().ok_or(BackendError::NotLoaded)?;
        let report = loaded
            .runner
            .run_invocation(&mut loaded.machine, args)
            .map_err(|e| match e {
                PipelineError::Sim(s) => BackendError::Engine(s.to_string()),
                PipelineError::Memory(t) => BackendError::Memory(t),
            })?;

        let worker_cores: Vec<usize> = loaded
            .runner
            .spice()
            .workers
            .iter()
            .map(|w| w.core)
            .collect();
        Ok(report.to_execution_report(&worker_cores))
    }

    fn enable_trace(&mut self, capacity: usize) {
        if let Some(l) = self.loaded.as_mut() {
            l.machine.enable_trace(capacity);
        }
    }

    fn trace(&self) -> Option<&spice_ir::TraceRecorder> {
        self.loaded.as_ref().and_then(|l| l.machine.trace())
    }
}

/// Which execution substrate to run a Spice loop on — selected by value by
/// the workload suite, the experiment harness and the examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Cycle-accurate Table 1 machine (full latencies).
    Sim,
    /// Reduced test machine (fast, for unit tests).
    SimTiny,
    /// Native OS threads through the interpreting chunk runtime.
    Native,
}

impl BackendChoice {
    /// Every available backend, for exhaustive cross-checks.
    #[must_use]
    pub fn all() -> [BackendChoice; 3] {
        [
            BackendChoice::Sim,
            BackendChoice::SimTiny,
            BackendChoice::Native,
        ]
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Sim => f.write_str("sim"),
            BackendChoice::SimTiny => f.write_str("sim-tiny"),
            BackendChoice::Native => f.write_str("native"),
        }
    }
}

/// Instantiates the chosen backend with `threads` threads.
///
/// # Panics
///
/// Panics if `threads < 2`.
#[must_use]
pub fn make_backend(choice: BackendChoice, threads: usize) -> Box<dyn ExecutionBackend> {
    match choice {
        BackendChoice::Sim => Box::new(SimBackend::new(threads)),
        BackendChoice::SimTiny => Box::new(SimBackend::tiny(threads)),
        BackendChoice::Native => Box::new(NativeLoopBackend::new(threads)),
    }
}

/// Instantiates the chosen backend with explicit predictor options (the
/// native backend's predictor is structural, so only the work estimate in
/// [`LoadOptions`] applies to it).
#[must_use]
pub fn make_backend_with(
    choice: BackendChoice,
    threads: usize,
    predictor: PredictorOptions,
) -> Box<dyn ExecutionBackend> {
    match choice {
        BackendChoice::Sim => Box::new(SimBackend::new(threads).with_predictor(predictor)),
        BackendChoice::SimTiny => Box::new(SimBackend::tiny(threads).with_predictor(predictor)),
        BackendChoice::Native => Box::new(NativeLoopBackend::new(threads)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::exec::ExecutionCost;
    use spice_ir::{BinOp, Operand};

    fn list_min_program(capacity: i64) -> (Program, FuncId, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let mut b = FunctionBuilder::new("list_min");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let wm = b.copy(i64::MAX);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let nw = b.select(better, w, wm);
        b.copy_into(wm, nw);
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(wm)));
        let f = program.add_func(b.finish());
        (program, f, nodes)
    }

    fn write_list(mem: &mut FlatMemory, base: i64, weights: &[i64]) -> i64 {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + 2 * i as i64;
            let next = if i + 1 < weights.len() { addr + 2 } else { 0 };
            mem.write(addr, *w).unwrap();
            mem.write(addr + 1, next).unwrap();
        }
        base
    }

    /// The acceptance demonstration: the same loop, the same driver code,
    /// two backends, identical results.
    #[test]
    fn both_backends_agree_through_one_call_site() {
        let weights: Vec<i64> = (0..250).map(|i| ((i * 53) % 997) + 1).collect();
        let expected = *weights.iter().min().unwrap();

        for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
            let (program, f, nodes) = list_min_program(weights.len() as i64 + 4);
            let mut backend = make_backend(choice, 4);
            backend
                .load(
                    program,
                    f,
                    LoadOptions::new(4096, Some(weights.len() as u64)),
                )
                .unwrap();
            let head = write_list(backend.mem_mut(), nodes, &weights);
            for inv in 0..3 {
                let report = backend.run_invocation(&[head]).unwrap();
                assert_eq!(
                    report.return_value,
                    Some(expected),
                    "{choice} invocation {inv}"
                );
            }
        }
    }

    #[test]
    fn sim_backend_reports_cycles_and_workers() {
        let weights: Vec<i64> = (0..120).map(|i| i + 3).collect();
        let (program, f, nodes) = list_min_program(weights.len() as i64 + 4);
        let mut backend = SimBackend::tiny(2);
        backend
            .load(
                program,
                f,
                LoadOptions::new(4096, Some(weights.len() as u64)),
            )
            .unwrap();
        let head = write_list(backend.mem_mut(), nodes, &weights);
        let report = backend.run_invocation(&[head]).unwrap();
        assert!(matches!(report.cost, ExecutionCost::Cycles(c) if c > 0));
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.work_per_thread.len(), 2);
        assert_eq!(backend.name(), "sim");
        assert_eq!(backend.threads(), 2);
        assert!(backend.runner().is_some());
    }

    #[test]
    fn run_before_load_errors() {
        let mut backend = SimBackend::tiny(2);
        assert!(matches!(
            backend.run_invocation(&[0]),
            Err(BackendError::NotLoaded)
        ));
    }

    /// A loop with a genuine cross-chunk RAW dependence: node `i` stores
    /// `value(i) + 1` into node `i+1`'s value word before the next iteration
    /// loads it. Both backends must detect the violation at commit, squash,
    /// recover by re-executing on the main thread, and still return the
    /// sequential result.
    fn chained_increment_program(capacity: i64) -> (Program, FuncId, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let mut b = FunctionBuilder::new("chained_increment");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let poke = b.new_block();
        let advance = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let s = b.binop(BinOp::Add, sum, w);
        b.copy_into(sum, s);
        let nx = b.load(c, 1);
        let has_next = b.binop(BinOp::Ne, nx, 0i64);
        b.cond_br(has_next, poke, advance);
        b.switch_to(poke);
        let bumped = b.binop(BinOp::Add, w, 1i64);
        b.store(bumped, nx, 0);
        b.br(advance);
        b.switch_to(advance);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = program.add_func(b.finish());
        (program, f, nodes)
    }

    #[test]
    fn both_backends_squash_and_recover_cross_chunk_dependences() {
        use spice_ir::exec::MisspeculationCause;
        let n: i64 = 150;
        let v0: i64 = 30;
        let expected = n * v0 + n * (n - 1) / 2;
        for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
            let (program, f, nodes) = chained_increment_program(n + 4);
            let mut backend = make_backend(choice, 3);
            backend
                .load(program, f, LoadOptions::new(4096, Some(n as u64)))
                .unwrap();
            {
                let mem = backend.mem_mut();
                for i in 0..n {
                    let addr = nodes + 2 * i;
                    let next = if i + 1 < n { addr + 2 } else { 0 };
                    mem.write(addr, if i == 0 { v0 } else { 0 }).unwrap();
                    mem.write(addr + 1, next).unwrap();
                }
            }
            let mut saw_violation = false;
            for inv in 0..5 {
                let report = backend.run_invocation(&[nodes]).unwrap();
                assert_eq!(report.return_value, Some(expected), "{choice} inv {inv}");
                for i in 1..n {
                    assert_eq!(
                        backend.mem().read(nodes + 2 * i).unwrap(),
                        v0 + i,
                        "{choice} node {i} after invocation {inv}"
                    );
                }
                if report
                    .misspeculation_causes()
                    .iter()
                    .any(|c| matches!(c, MisspeculationCause::DependenceViolation { .. }))
                {
                    saw_violation = true;
                    assert!(report.squashed_chunks > 0, "{choice}");
                }
            }
            assert!(
                saw_violation,
                "{choice}: the conflict detector never fired on a conflict-carrying loop"
            );
        }
    }
}
