//! End-to-end orchestration: run a Spice-transformed loop, invocation by
//! invocation, on the timing simulator.
//!
//! Everything Algorithm 2 does now runs as simulated code: the centralized
//! step is generated IR executing on core 0 at the start of every invocation
//! (its cycles and the `new_invocation` token traffic appear in the per-core
//! reports), and the distributed memoization runs inside every thread. The
//! host side of this runner only *reads* shared memory after an invocation —
//! to reconstruct the plan and the per-thread feedback for reports — and
//! never writes the predictor arrays.

use serde::{Deserialize, Serialize};

use spice_ir::exec::{ExecutionCost, ExecutionReport, MisspeculationCause, WorkerReport};
use spice_ir::{FuncId, TraceEvent, TrapKind};
use spice_sim::machine::RunSummary;
use spice_sim::{InvocationStats, Machine, SimError};

use crate::predictor::{read_feedback, read_plan, Assignment, PredictorOptions};
use crate::transform::SpiceParallelLoop;

/// Errors surfaced while running a transformed loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The simulator reported an error (deadlock, cycle budget, unrecovered
    /// trap).
    Sim(SimError),
    /// A host-side memory access failed (corrupted predictor layout).
    Memory(TrapKind),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sim(e) => write!(f, "simulation error: {e}"),
            PipelineError::Memory(t) => write!(f, "host memory access failed: {t}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<TrapKind> for PipelineError {
    fn from(t: TrapKind) -> Self {
        PipelineError::Memory(t)
    }
}

/// Result of one parallel loop invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvocationReport {
    /// Simulated cycles of this invocation.
    pub cycles: u64,
    /// Return value of the main thread's function.
    pub return_value: Option<i64>,
    /// Whether any speculative thread was squashed.
    pub misspeculated: bool,
    /// Number of speculative threads whose chunk was committed.
    pub valid_workers: u64,
    /// Per-thread work counters reported by the distributed predictor.
    pub work: Vec<u64>,
    /// Full per-core simulator report.
    pub summary: RunSummary,
}

impl InvocationReport {
    /// Converts this simulator-specific report into the backend-neutral
    /// [`ExecutionReport`] of the shared execution layer. `worker_cores`
    /// maps worker index to simulated core (from
    /// [`SpiceParallelLoop::workers`]), used to attribute trap causes.
    #[must_use]
    pub fn to_execution_report(&self, worker_cores: &[usize]) -> ExecutionReport {
        let committed = usize::try_from(self.valid_workers).unwrap_or(usize::MAX);
        let workers: Vec<WorkerReport> = worker_cores
            .iter()
            .enumerate()
            .map(|(i, &core)| {
                let commit = i < committed;
                let conflict = self
                    .summary
                    .cores
                    .get(core)
                    .and_then(|c| c.spec_conflict_addr);
                let cause = if commit {
                    None
                } else if let Some(trap) = self.summary.cores.get(core).and_then(|c| c.trapped) {
                    Some(MisspeculationCause::Fault(trap))
                } else if let Some(addr) = conflict {
                    // The merge chain's spec.check found this chunk's read
                    // set overlapping an earlier chunk's committed writes.
                    Some(MisspeculationCause::DependenceViolation { addr })
                } else if i > committed {
                    Some(MisspeculationCause::SquashCascade)
                } else {
                    Some(MisspeculationCause::StalePrediction)
                };
                WorkerReport {
                    committed: commit,
                    cause,
                    work: self.work.get(i + 1).copied().unwrap_or(0),
                }
            })
            .collect();
        ExecutionReport {
            backend: "sim",
            cost: ExecutionCost::Cycles(self.cycles),
            return_value: self.return_value,
            misspeculated: self.misspeculated,
            committed_chunks: committed.min(worker_cores.len()),
            squashed_chunks: worker_cores.len().saturating_sub(committed),
            workers,
            work_per_thread: self.work.clone(),
        }
    }
}

/// Runs a Spice-transformed loop across invocations. The centralized
/// predictor runs *inside* the simulation (core 0's generated code); this
/// runner only spawns the threads and reads the feedback back afterwards.
#[derive(Debug)]
pub struct SpiceRunner {
    spice: SpiceParallelLoop,
    stats: InvocationStats,
    last_plan: Vec<Assignment>,
    invocations: u64,
}

impl SpiceRunner {
    /// Creates a runner for a transformed loop. Predictor behaviour
    /// (re-memoization, load balancing, the first-invocation estimate) was
    /// fixed at transform time via [`crate::transform::SpiceOptions`].
    #[must_use]
    pub fn new(spice: SpiceParallelLoop) -> Self {
        // The runner never sees the transformed `Program` (it lives in the
        // machine), so it cannot re-run the full lint stack — but the
        // program-free protocol-metadata checks (channel collisions,
        // duplicate worker cores) still guard against a corrupted or
        // hand-built loop description.
        if cfg!(debug_assertions) {
            if let Err(errs) = spice_ir::lint::check_protocol_metadata(&spice.protocol()) {
                let msgs: Vec<String> = errs.iter().map(ToString::to_string).collect();
                panic!(
                    "SpiceRunner::new given an inconsistent loop description: {}",
                    msgs.join("; ")
                );
            }
        }
        SpiceRunner {
            spice,
            stats: InvocationStats::new(),
            last_plan: Vec::new(),
            invocations: 0,
        }
    }

    /// The transformed loop being run.
    #[must_use]
    pub fn spice(&self) -> &SpiceParallelLoop {
        &self.spice
    }

    /// Accumulated per-invocation statistics.
    #[must_use]
    pub fn stats(&self) -> &InvocationStats {
        &self.stats
    }

    /// The threshold assignments the on-core centralized step wrote for the
    /// most recent invocation, reconstructed from shared memory (ordered by
    /// `sva` row). Empty before the first invocation or when no plan was
    /// produced.
    #[must_use]
    pub fn last_plan(&self) -> &[Assignment] {
        &self.last_plan
    }

    /// Runs a single loop invocation: spawns the main thread (with `args`)
    /// and every worker, and simulates to completion. The main thread's
    /// entry code runs the centralized predictor step and releases the
    /// workers with their `new_invocation` tokens; afterwards the host
    /// *reads* the shared arrays to report the plan and the feedback.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if the simulation fails or the predictor
    /// arrays cannot be read back.
    pub fn run_invocation(
        &mut self,
        machine: &mut Machine,
        args: &[i64],
    ) -> Result<InvocationReport, PipelineError> {
        self.start_invocation(machine, args)?;
        self.finish_invocation(machine)
    }

    /// First half of [`SpiceRunner::run_invocation`]: clears threads, resets
    /// the clock, exempts the predictor arrays from conflict detection, and
    /// spawns the main thread and every worker — but does not simulate.
    /// Time-travel drivers use this with [`Machine::run_until`] to pause an
    /// invocation mid-flight, snapshot it, and finish it (possibly on a
    /// resumed machine) with [`SpiceRunner::finish_invocation`].
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if a thread cannot be spawned.
    pub fn start_invocation(
        &mut self,
        machine: &mut Machine,
        args: &[i64],
    ) -> Result<(), PipelineError> {
        machine.clear_threads();
        machine.reset_cycle_counter();
        // The predictor arrays are runtime metadata ordered by the
        // new_invocation token protocol; the centralized step rewrites them
        // on core 0 every invocation, so they must not feed the
        // program-data conflict detector (idempotent, cheap).
        let (lo, hi) = self.spice.layout.address_range();
        machine.set_conflict_exempt(lo, hi);
        machine.trace_emit(TraceEvent::InvocationBegin {
            index: self.invocations,
        });
        self.invocations += 1;

        machine.spawn(0, self.spice.main, args)?;
        for w in &self.spice.workers {
            machine.spawn(w.core, w.func, &[])?;
        }
        Ok(())
    }

    /// Second half of [`SpiceRunner::run_invocation`]: simulates the spawned
    /// threads to completion and reads the plan/feedback back. May be called
    /// on a machine resumed from a snapshot of the started invocation.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if the simulation fails or the predictor
    /// arrays cannot be read back.
    pub fn finish_invocation(
        &mut self,
        machine: &mut Machine,
    ) -> Result<InvocationReport, PipelineError> {
        let summary = machine.run()?;
        self.last_plan = read_plan(&self.spice.layout, machine.mem())?;
        let feedback = read_feedback(&self.spice.layout, machine.mem())?;
        self.stats.record(&summary, feedback.misspeculated);
        let workers = self.spice.workers.len() as u64;
        machine.trace_emit(TraceEvent::PredictorPlan {
            at: summary.cycles,
            chunks: self.last_plan.len() as u64,
        });
        machine.trace_emit(TraceEvent::PredictorFeedback {
            at: summary.cycles,
            committed: feedback.valid_workers.min(workers),
            squashed: workers.saturating_sub(feedback.valid_workers),
        });

        Ok(InvocationReport {
            cycles: summary.cycles,
            return_value: machine.return_value(0),
            misspeculated: feedback.misspeculated,
            valid_workers: feedback.valid_workers,
            work: feedback.work,
            summary,
        })
    }
}

/// Runs an untransformed function on core 0 of `machine` for one invocation
/// and reports `(cycles, return value)`. This is the single-threaded baseline
/// every speedup in the paper is measured against.
///
/// # Errors
///
/// Returns a [`PipelineError`] if the simulation fails.
pub fn run_sequential(
    machine: &mut Machine,
    func: FuncId,
    args: &[i64],
) -> Result<(u64, Option<i64>), PipelineError> {
    machine.clear_threads();
    machine.reset_cycle_counter();
    machine.spawn(0, func, args)?;
    let summary = machine.run()?;
    Ok((summary.cycles, machine.return_value(0)))
}

/// Convenience default predictor options for a workload where the caller
/// knows roughly how many iterations the first invocation will run — this
/// seeds the load balancer so the very first invocation already memoizes.
#[must_use]
pub fn predictor_options_with_estimate(iterations: u64) -> PredictorOptions {
    PredictorOptions {
        initial_work_estimate: Some(iterations),
        ..PredictorOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::LoopAnalysis;
    use crate::transform::{SpiceOptions, SpiceTransform};
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::{BinOp, Operand, Program};
    use spice_sim::MachineConfig;

    /// Builds the otter-style loop and returns (program, func, list layout
    /// helpers). The list nodes live in a global array of (weight, next)
    /// pairs so the test can build and mutate lists.
    fn otter_program(capacity: i64) -> (Program, FuncId, i64) {
        let mut p = Program::new();
        let nodes_base = p.add_global("nodes", capacity * 2);
        let mut b = FunctionBuilder::new("find_lightest");
        let c0 = b.param();
        let out_addr = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(c0);
        let wm = b.copy(i64::MAX);
        let cm = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let new_wm = b.select(better, w, wm);
        b.copy_into(wm, new_wm);
        let new_cm = b.select(better, c, cm);
        b.copy_into(cm, new_cm);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out_addr, 0);
        b.ret(Some(Operand::Reg(wm)));
        let f = p.add_func(b.finish());
        (p, f, nodes_base)
    }

    /// Writes a singly linked list of `weights` into the nodes array and
    /// returns the head address.
    fn build_list(mem: &mut spice_ir::interp::FlatMemory, base: i64, weights: &[i64]) -> i64 {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + (i as i64) * 2;
            let next = if i + 1 < weights.len() {
                base + (i as i64 + 1) * 2
            } else {
                0
            };
            mem.write(addr, *w).unwrap();
            mem.write(addr + 1, next).unwrap();
        }
        if weights.is_empty() {
            0
        } else {
            base
        }
    }

    fn sequential_min(weights: &[i64]) -> i64 {
        weights.iter().copied().min().unwrap_or(i64::MAX)
    }

    #[test]
    fn spice_two_threads_matches_sequential_result() {
        let weights: Vec<i64> = (0..200).map(|i| ((i * 37) % 211) + 5).collect();
        let (mut p, f, base) = otter_program(weights.len() as i64 + 8);
        let out_global = p.add_global("out", 1);
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(
            2,
            weights.len() as u64,
        ))
        .apply(&mut p, &analysis)
        .unwrap();

        let mut machine = Machine::new(MachineConfig::test_tiny(2), p);
        let head = build_list(machine.mem_mut(), base, &weights);
        let mut runner = SpiceRunner::new(spice);

        // Several invocations over the same (unchanged) list: after the first
        // one the predictions must hit and the result stays correct.
        let mut saw_success = false;
        for _ in 0..4 {
            let report = runner
                .run_invocation(&mut machine, &[head, out_global])
                .unwrap();
            assert_eq!(report.return_value, Some(sequential_min(&weights)));
            if !report.misspeculated {
                saw_success = true;
            }
        }
        assert!(
            saw_success,
            "speculation never succeeded on a stable list: {:?}",
            runner.stats().misspeculated
        );
    }

    #[test]
    fn spice_four_threads_correct_and_faster_than_sequential() {
        let weights: Vec<i64> = (0..400).map(|i| ((i * 53) % 997) + 1).collect();
        let (p_seq, f_seq, base_seq) = otter_program(weights.len() as i64 + 8);
        let (mut p, f, base) = otter_program(weights.len() as i64 + 8);
        let out_global_seq = {
            let mut p2 = p_seq.clone();
            let g = p2.add_global("out", 1);
            drop(p2);
            g
        };
        // Rebuild sequential program with the out global so addresses line up.
        let mut p_seq = p_seq;
        let out_seq = p_seq.add_global("out", 1);
        assert_eq!(out_seq, out_global_seq);
        let out_global = p.add_global("out", 1);

        // Sequential baseline.
        let mut m_seq = Machine::new(MachineConfig::test_tiny(1), p_seq);
        let head_seq = build_list(m_seq.mem_mut(), base_seq, &weights);
        let (seq_cycles, seq_val) =
            run_sequential(&mut m_seq, f_seq, &[head_seq, out_seq]).unwrap();
        assert_eq!(seq_val, Some(sequential_min(&weights)));

        // Spice with 4 threads.
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(
            4,
            weights.len() as u64,
        ))
        .apply(&mut p, &analysis)
        .unwrap();
        let mut machine = Machine::new(MachineConfig::test_tiny(4), p);
        let head = build_list(machine.mem_mut(), base, &weights);
        let mut runner = SpiceRunner::new(spice);

        let mut best_cycles = u64::MAX;
        for _ in 0..5 {
            let report = runner
                .run_invocation(&mut machine, &[head, out_global])
                .unwrap();
            assert_eq!(report.return_value, Some(sequential_min(&weights)));
            best_cycles = best_cycles.min(report.cycles);
        }
        assert!(
            best_cycles < seq_cycles,
            "expected a parallel speedup: sequential {seq_cycles} vs best parallel {best_cycles}"
        );
        // With 4 threads and a stable list, at least one invocation should
        // split work across several cores.
        let spread = runner
            .stats()
            .work_per_core
            .iter()
            .any(|w| w.iter().filter(|&&x| x > 0).count() >= 3);
        assert!(
            spread,
            "work never spread across cores: {:?}",
            runner.stats().work_per_core
        );
    }

    #[test]
    fn stale_prediction_is_squashed_and_result_stays_correct() {
        let weights: Vec<i64> = (0..120).map(|i| 1000 - i).collect();
        let (mut p, f, base) = otter_program(weights.len() as i64 + 8);
        let out_global = p.add_global("out", 1);
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(
            2,
            weights.len() as u64,
        ))
        .apply(&mut p, &analysis)
        .unwrap();
        let sva_base = spice.layout.sva_base;

        let mut machine = Machine::new(MachineConfig::test_tiny(2), p);
        let head = build_list(machine.mem_mut(), base, &weights);
        let mut runner = SpiceRunner::new(spice);

        // Warm up so the sva holds a real node address.
        runner
            .run_invocation(&mut machine, &[head, out_global])
            .unwrap();
        // Corrupt the prediction with an address that is NOT on the list
        // (points into the middle of a node pair), simulating a deleted node
        // whose memory now holds garbage.
        machine.mem_mut().write(sva_base, base + 1).unwrap();
        // Also poison that location's "next" field with a wild pointer so the
        // speculative thread actually traps.
        machine.mem_mut().write(base + 2, -77).unwrap();
        let report = runner
            .run_invocation(&mut machine, &[head, out_global])
            .unwrap();
        assert!(report.misspeculated);
        // The main thread still produced the right answer because it executed
        // every iteration itself (weight at base+2 was clobbered to -77,
        // which IS on the list as node 1's weight).
        let expected = {
            let mut w2 = weights.clone();
            w2[1] = -77;
            sequential_min(&w2)
        };
        assert_eq!(report.return_value, Some(expected));
    }
}
