//! Loop analysis for the Spice transformation.
//!
//! Bundles the IR analyses (natural loops, liveness, reduction detection)
//! into the per-loop summary that Algorithm 1 of the paper starts from:
//! the inter-iteration live-ins, the subset removable by reduction
//! transformations, and the remainder that must be value-speculated.

use spice_ir::cfg::Cfg;
use spice_ir::dataflow::{classify_loop_dependences, DependenceClass, LoopDependence};
use spice_ir::dom::DomTree;
use spice_ir::exec::ConflictPolicy;
use spice_ir::liveness::{loop_live_ins, Liveness, LoopLiveIns};
use spice_ir::loops::{Loop, LoopForest, LoopId};
use spice_ir::reduction::{detect_reductions, ReductionSet};
use spice_ir::{BlockId, FuncId, Program, Reg};

/// Why a loop cannot be Spice-parallelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applicability {
    /// The loop can be transformed.
    Ok,
    /// The function has no loop with the requested header.
    NoSuchLoop,
    /// The loop has no unique preheader block to host the per-invocation
    /// setup code.
    NoPreheader,
    /// The loop exits through more than one edge; the transformation
    /// currently requires a single exit edge.
    MultipleExits,
    /// Every loop-carried live-in is a reduction, so there is nothing to
    /// value-speculate — the loop should be parallelized as DOALL /
    /// reduction instead.
    NothingToSpeculate,
    /// Fewer than two threads were requested.
    TooFewThreads,
}

impl std::fmt::Display for Applicability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Applicability::Ok => f.write_str("loop is Spice-parallelizable"),
            Applicability::NoSuchLoop => f.write_str("no loop with the requested header"),
            Applicability::NoPreheader => f.write_str("loop has no unique preheader"),
            Applicability::MultipleExits => f.write_str("loop has more than one exit edge"),
            Applicability::NothingToSpeculate => {
                f.write_str("all loop-carried live-ins are reductions; nothing to speculate")
            }
            Applicability::TooFewThreads => f.write_str("at least two threads are required"),
        }
    }
}

/// Everything the transformation needs to know about the target loop.
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    /// Function containing the loop.
    pub func: FuncId,
    /// The loop's header block.
    pub header: BlockId,
    /// All blocks of the loop.
    pub blocks: Vec<BlockId>,
    /// Latch blocks (sources of back edges).
    pub latches: Vec<BlockId>,
    /// The single exit edge `(from, to)`.
    pub exit_edge: (BlockId, BlockId),
    /// The preheader block.
    pub preheader: BlockId,
    /// Live-in / live-out classification.
    pub live: LoopLiveIns,
    /// Recognised reductions.
    pub reductions: ReductionSet,
    /// Loop-carried live-ins that must be value-speculated
    /// (`carried − reductions`), in ascending register order. This is the
    /// set `S` of Algorithm 1.
    pub speculated: Vec<Reg>,
    /// The static dependence pre-screen: the loop's store/load pairs
    /// classified from base-pointer/offset chains. Advisory input to
    /// [`ConflictPolicy`] selection — strictly observational, never changes
    /// the transform's output.
    pub dependence: LoopDependence,
}

impl LoopAnalysis {
    /// Analyses the loop of `func` whose header is `header`.
    ///
    /// # Errors
    ///
    /// Returns the reason the loop cannot be transformed.
    pub fn analyze(
        program: &Program,
        func: FuncId,
        header: BlockId,
    ) -> Result<LoopAnalysis, Applicability> {
        let f = program.func(func);
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let loop_id: LoopId = forest
            .loop_with_header(header)
            .ok_or(Applicability::NoSuchLoop)?;
        let l: &Loop = forest.get(loop_id);

        let preheader = forest
            .preheader(loop_id, f, &cfg)
            .ok_or(Applicability::NoPreheader)?;
        if l.exits.len() != 1 {
            return Err(Applicability::MultipleExits);
        }
        let exit_edge = l.exits[0];

        let liveness = Liveness::new(f, &cfg);
        let live = loop_live_ins(f, &cfg, &liveness, l);
        let reductions = detect_reductions(f, l, &live);
        let covered = reductions.covered_regs();
        let speculated: Vec<Reg> = live
            .carried
            .iter()
            .copied()
            .filter(|r| !covered.contains(r))
            .collect();
        if speculated.is_empty() {
            return Err(Applicability::NothingToSpeculate);
        }

        let blocks = l.blocks_sorted();
        let dependence = classify_loop_dependences(f, &cfg, &blocks);

        Ok(LoopAnalysis {
            func,
            header,
            blocks,
            latches: l.latches.clone(),
            exit_edge,
            preheader,
            live,
            reductions,
            speculated,
            dependence,
        })
    }

    /// Finds the outermost loop of `func` and analyses it — convenience for
    /// workloads whose target loop is the only/top loop of the function.
    ///
    /// # Errors
    ///
    /// Returns the reason no loop could be analysed.
    pub fn analyze_outermost(
        program: &Program,
        func: FuncId,
    ) -> Result<LoopAnalysis, Applicability> {
        let f = program.func(func);
        let forest = LoopForest::of(f);
        let top = forest.top_level();
        let mut best: Option<(usize, BlockId)> = None;
        for id in top {
            let l = forest.get(id);
            let size = l.blocks.len();
            if best.is_none_or(|(s, _)| size > s) {
                best = Some((size, l.header));
            }
        }
        match best {
            Some((_, header)) => LoopAnalysis::analyze(program, func, header),
            None => Err(Applicability::NoSuchLoop),
        }
    }

    /// Number of live-in words one speculated-values-array row holds.
    #[must_use]
    pub fn spec_width(&self) -> usize {
        self.speculated.len()
    }

    /// The [`ConflictPolicy`] the static dependence pre-screen recommends:
    /// detection can be skipped only when every cross-chunk store/load pair
    /// is provably disjoint. Callers that want to *weaken* a declared
    /// `Detect` policy should consult this; the pre-screen itself never
    /// overrides what a workload declares.
    #[must_use]
    pub fn recommended_policy(&self) -> ConflictPolicy {
        match self.dependence.class {
            DependenceClass::ProvablyDisjoint => ConflictPolicy::AssumeIndependent,
            DependenceClass::Unknown | DependenceClass::ProvablyDependent => ConflictPolicy::Detect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::{BinOp, Operand};

    /// The paper's Figure 1(a) loop with an extra min-with-payload reduction.
    fn otter_program() -> (Program, FuncId) {
        let mut b = FunctionBuilder::new("find_lightest");
        let c = b.param();
        let wm = b.param();
        let cm = b.param();
        let out_addr = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let new_wm = b.select(better, w, wm);
        b.copy_into(wm, new_wm);
        let new_cm = b.select(better, c, cm);
        b.copy_into(cm, new_cm);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out_addr, 0);
        b.ret(Some(Operand::Reg(wm)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        (p, f)
    }

    #[test]
    fn otter_loop_analysis_isolates_pointer_as_speculated() {
        let (p, f) = otter_program();
        let a = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let func = p.func(f);
        let c = func.params[0];
        assert_eq!(a.speculated, vec![c]);
        assert_eq!(a.spec_width(), 1);
        assert_eq!(a.reductions.reductions.len(), 1);
        assert_eq!(a.preheader, BlockId(1));
        assert_eq!(a.header, BlockId(2));
        assert_eq!(a.exit_edge.1, BlockId(4));
        assert_eq!(a.latches, vec![BlockId(3)]);
    }

    #[test]
    fn otter_loop_prescreen_is_provably_disjoint() {
        // The loop body only loads (the result store sits in the exit block,
        // outside the loop), so the pre-screen proves there is no
        // cross-chunk RAW dependence and recommends skipping detection.
        let (p, f) = otter_program();
        let a = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        assert_eq!(a.dependence.class, DependenceClass::ProvablyDisjoint);
        assert_eq!(a.dependence.stores, 0);
        assert!(a.dependence.loads > 0);
        assert_eq!(a.recommended_policy(), ConflictPolicy::AssumeIndependent);
    }

    #[test]
    fn store_to_chased_pointer_is_unknown() {
        // Same loop shape, but the body also writes through the chased
        // pointer: the base is a load result, so the pre-screen must stay
        // conservative and keep detection on.
        let mut b = FunctionBuilder::new("chase_store");
        let c = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let w2 = b.binop(BinOp::Add, w, 1i64);
        b.store(w2, c, 0);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(c)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let a = LoopAnalysis::analyze(&p, f, header).unwrap();
        assert_eq!(a.dependence.class, DependenceClass::Unknown);
        assert!(a.dependence.stores > 0);
        assert_eq!(a.recommended_policy(), ConflictPolicy::Detect);
    }

    #[test]
    fn missing_loop_is_rejected() {
        let mut b = FunctionBuilder::new("noloop");
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        assert_eq!(
            LoopAnalysis::analyze_outermost(&p, f).unwrap_err(),
            Applicability::NoSuchLoop
        );
        assert_eq!(
            LoopAnalysis::analyze(&p, f, BlockId(0)).unwrap_err(),
            Applicability::NoSuchLoop
        );
    }

    #[test]
    fn loop_without_preheader_is_rejected() {
        // Two predecessors of the header from outside the loop.
        let mut b = FunctionBuilder::new("nopre");
        let x = b.param();
        let p1 = b.new_block();
        let p2 = b.new_block();
        let header = b.new_block();
        let exit = b.new_block();
        b.cond_br(x, p1, p2);
        b.switch_to(p1);
        b.br(header);
        b.switch_to(p2);
        b.br(header);
        b.switch_to(header);
        let c = b.binop(BinOp::Sub, x, 1i64);
        b.copy_into(x, c);
        b.cond_br(x, header, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        assert_eq!(
            LoopAnalysis::analyze(&p, f, header).unwrap_err(),
            Applicability::NoPreheader
        );
    }

    #[test]
    fn reduction_only_loop_is_rejected() {
        // for i in 0..n { sum += A[i] } — i is used by the exit test so it is
        // speculated... build it with i as the ONLY non-reduction and verify
        // acceptance; then a pure accumulate-forever loop must be rejected.
        let mut b = FunctionBuilder::new("reduce_only");
        let n = b.param();
        let sum = b.copy(0i64);
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, sum, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        // sum is read by the exit condition, so it is NOT a pure reduction —
        // this loop is accepted (sum becomes the speculated live-in).
        let s2 = b.binop(BinOp::Add, sum, 3i64);
        b.copy_into(sum, s2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let a = LoopAnalysis::analyze(&p, f, header).unwrap();
        assert_eq!(a.speculated, vec![sum]);
    }

    #[test]
    fn applicability_messages_are_nonempty() {
        for a in [
            Applicability::Ok,
            Applicability::NoSuchLoop,
            Applicability::NoPreheader,
            Applicability::MultipleExits,
            Applicability::NothingToSpeculate,
            Applicability::TooFewThreads,
        ] {
            assert!(!a.to_string().is_empty());
        }
    }
}
