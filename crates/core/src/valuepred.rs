//! Conventional value predictors and the Spice memoization predictor,
//! evaluated over recorded live-in traces.
//!
//! Section 2.2 of the paper argues that the predictors used by prior TLS
//! work — last-value, stride, and trace-based (increment) predictors —
//! cannot predict the live-ins of pointer-chasing loops, while Spice's
//! "remember a few values from the previous invocation" strategy can. This
//! module implements all four so that claim can be measured: each predictor
//! consumes the per-iteration loop-carried live-in values of consecutive
//! loop invocations and reports its prediction accuracy.
//!
//! These predictors are also what the baseline *TLS with value prediction*
//! scheme (paper Figure 3) uses to decide how often an iteration's input can
//! be guessed.

use std::collections::HashMap;

/// A trace of one loop invocation: the loop-carried live-in tuple observed at
/// the start of every iteration.
pub type InvocationTrace = Vec<Vec<i64>>;

/// A value predictor evaluated against per-iteration live-in tuples.
pub trait ValuePredictor {
    /// Human-readable predictor name.
    fn name(&self) -> &'static str;

    /// Predicts the live-in tuple of the next iteration, or `None` when the
    /// predictor has no prediction yet (cold start).
    fn predict(&self) -> Option<Vec<i64>>;

    /// Informs the predictor of the live-in tuple actually observed.
    fn observe(&mut self, actual: &[i64]);

    /// Informs the predictor that a new loop invocation begins.
    fn new_invocation(&mut self) {}
}

/// Accuracy statistics of one predictor over a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictorStats {
    /// Number of predictions made (cold-start iterations are not counted).
    pub predictions: u64,
    /// Number of correct predictions.
    pub correct: u64,
}

impl PredictorStats {
    /// Prediction accuracy in `[0, 1]`; 0 when no prediction was made.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// Runs `predictor` over a sequence of invocation traces and reports its
/// accuracy at predicting each iteration's live-in tuple.
pub fn evaluate_predictor<P: ValuePredictor + ?Sized>(
    predictor: &mut P,
    invocations: &[InvocationTrace],
) -> PredictorStats {
    let mut stats = PredictorStats::default();
    for inv in invocations {
        predictor.new_invocation();
        for tuple in inv {
            if let Some(guess) = predictor.predict() {
                stats.predictions += 1;
                if guess == *tuple {
                    stats.correct += 1;
                }
            }
            predictor.observe(tuple);
        }
    }
    stats
}

/// Predicts that the next value equals the previous value (Lipasti-style
/// last-value prediction).
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    last: Option<Vec<i64>>,
}

impl LastValuePredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ValuePredictor for LastValuePredictor {
    fn name(&self) -> &'static str {
        "last-value"
    }

    fn predict(&self) -> Option<Vec<i64>> {
        self.last.clone()
    }

    fn observe(&mut self, actual: &[i64]) {
        self.last = Some(actual.to_vec());
    }
}

/// Predicts `last + stride` per live-in component, with the stride learned
/// from the two most recent observations.
#[derive(Debug, Clone, Default)]
pub struct StridePredictor {
    last: Option<Vec<i64>>,
    stride: Option<Vec<i64>>,
}

impl StridePredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ValuePredictor for StridePredictor {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn predict(&self) -> Option<Vec<i64>> {
        match (&self.last, &self.stride) {
            (Some(last), Some(stride)) => Some(
                last.iter()
                    .zip(stride)
                    .map(|(l, s)| l.wrapping_add(*s))
                    .collect(),
            ),
            _ => None,
        }
    }

    fn observe(&mut self, actual: &[i64]) {
        if let Some(last) = &self.last {
            self.stride = Some(
                actual
                    .iter()
                    .zip(last)
                    .map(|(a, l)| a.wrapping_sub(*l))
                    .collect(),
            );
        }
        self.last = Some(actual.to_vec());
    }
}

/// Trace-based increment predictor in the style of Marcuello et al.: the
/// stride is learned *per control-flow path through the iteration* (the
/// "loop iteration trace"), so different paths can carry different
/// increments.
#[derive(Debug, Clone, Default)]
pub struct IncrementTracePredictor {
    last: Option<Vec<i64>>,
    strides: HashMap<u64, Vec<i64>>,
    current_path: u64,
}

impl IncrementTracePredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the identifier of the control-flow path taken by the most
    /// recently completed iteration — the prediction context. Callers that
    /// do not track paths can leave it at 0, which makes this predictor
    /// equivalent to [`StridePredictor`] with one context.
    pub fn set_path(&mut self, path: u64) {
        self.current_path = path;
    }
}

impl ValuePredictor for IncrementTracePredictor {
    fn name(&self) -> &'static str {
        "increment-trace"
    }

    fn predict(&self) -> Option<Vec<i64>> {
        let last = self.last.as_ref()?;
        let stride = self.strides.get(&self.current_path)?;
        Some(
            last.iter()
                .zip(stride)
                .map(|(l, s)| l.wrapping_add(*s))
                .collect(),
        )
    }

    fn observe(&mut self, actual: &[i64]) {
        if let Some(last) = &self.last {
            let stride: Vec<i64> = actual
                .iter()
                .zip(last)
                .map(|(a, l)| a.wrapping_sub(*l))
                .collect();
            // The increment is attributed to the path of the iteration that
            // produced it (the current prediction context).
            self.strides.insert(self.current_path, stride);
        }
        self.last = Some(actual.to_vec());
    }
}

/// The Spice predictor evaluated at the same granularity as the others, but
/// with its own success criterion (paper §1, second insight): it predicts
/// that a live-in tuple memoized from the *previous* invocation will appear
/// *some time* during the current invocation — not at a particular
/// iteration.
///
/// `chunks` controls how many tuples are memoized per invocation
/// (`threads - 1` in the transformation).
#[derive(Debug, Clone)]
pub struct SpiceMemoPredictor {
    chunks: usize,
    memoized: Vec<Vec<i64>>,
    current: Vec<Vec<i64>>,
}

impl SpiceMemoPredictor {
    /// Creates a predictor that memoizes `chunks` tuples per invocation.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    #[must_use]
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0, "at least one chunk boundary is required");
        SpiceMemoPredictor {
            chunks,
            memoized: Vec::new(),
            current: Vec::new(),
        }
    }

    /// Evaluates the Spice criterion over a sequence of invocation traces:
    /// the fraction of memoized tuples from invocation `k` that appear
    /// somewhere in invocation `k + 1`. This is exactly the quantity that
    /// determines Spice's mis-speculation rate.
    #[must_use]
    pub fn evaluate(mut self, invocations: &[InvocationTrace]) -> PredictorStats {
        let mut stats = PredictorStats::default();
        for inv in invocations {
            // Check last invocation's memoized tuples against this one.
            if !self.memoized.is_empty() {
                for tuple in &self.memoized {
                    stats.predictions += 1;
                    if inv.iter().any(|t| t == tuple) {
                        stats.correct += 1;
                    }
                }
            }
            // Memoize evenly spaced tuples from this invocation.
            self.current = inv.clone();
            self.memoized = memoize_evenly(&self.current, self.chunks);
        }
        stats
    }
}

/// Picks `chunks` evenly spaced tuples from an invocation trace — the
/// idealised equivalent of Algorithm 2's threshold-triggered memoization
/// under perfectly balanced work.
#[must_use]
pub fn memoize_evenly(trace: &[Vec<i64>], chunks: usize) -> Vec<Vec<i64>> {
    if trace.is_empty() || chunks == 0 {
        return Vec::new();
    }
    let n = trace.len();
    let threads = chunks + 1;
    let mut out = Vec::new();
    for k in 1..=chunks {
        let idx = (k * n) / threads;
        if idx < n {
            out.push(trace[idx].clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(values: &[i64]) -> InvocationTrace {
        values.iter().map(|v| vec![*v]).collect()
    }

    #[test]
    fn last_value_predicts_constant_stream() {
        let invs = vec![tuples(&[5, 5, 5, 5])];
        let mut p = LastValuePredictor::new();
        let s = evaluate_predictor(&mut p, &invs);
        assert_eq!(s.predictions, 3);
        assert_eq!(s.correct, 3);
        assert!((s.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn last_value_fails_on_pointer_chase() {
        // Distinct node addresses every iteration.
        let invs = vec![tuples(&[100, 116, 132, 148, 164])];
        let mut p = LastValuePredictor::new();
        let s = evaluate_predictor(&mut p, &invs);
        assert_eq!(s.correct, 0);
    }

    #[test]
    fn stride_predicts_contiguous_nodes_but_not_reordered_lists() {
        // Contiguously allocated list: stride 16 -> perfect after warmup.
        let invs = vec![tuples(&[100, 116, 132, 148, 164])];
        let mut p = StridePredictor::new();
        let s = evaluate_predictor(&mut p, &invs);
        assert_eq!(s.predictions, 3);
        assert_eq!(s.correct, 3);

        // After an insertion/deletion the traversal order breaks the stride.
        let invs = vec![tuples(&[100, 116, 200, 132, 148])];
        let mut p = StridePredictor::new();
        let s = evaluate_predictor(&mut p, &invs);
        assert!(s.accuracy() < 0.5);
    }

    #[test]
    fn increment_trace_uses_per_path_strides() {
        let mut p = IncrementTracePredictor::new();
        // Iterations alternate between two control-flow paths: path 0 bumps
        // the live-in by 1, path 1 bumps it by 10. A plain stride predictor
        // cannot track this; the trace-based predictor can once both strides
        // are learned. Each tuple is (path of the iteration that produced
        // this value, value).
        let seq: Vec<(u64, i64)> = vec![(0, 0), (0, 1), (1, 11), (0, 12), (1, 22), (0, 23)];
        let mut correct = 0;
        let mut total = 0;
        for (path, v) in seq {
            p.set_path(path);
            if let Some(g) = p.predict() {
                total += 1;
                if g == vec![v] {
                    correct += 1;
                }
            }
            p.observe(&[v]);
        }
        // Predictions start once the relevant path's stride is known (the
        // fourth observation onwards); from then on every guess is right.
        assert_eq!(total, 3);
        assert_eq!(correct, 3);
        assert_eq!(p.name(), "increment-trace");

        // The plain stride predictor gets at most one of these right.
        let inv: InvocationTrace = vec![vec![0], vec![1], vec![11], vec![12], vec![22], vec![23]];
        let mut sp = StridePredictor::new();
        let st = evaluate_predictor(&mut sp, &[inv]);
        assert!(st.correct <= 1);
    }

    #[test]
    fn spice_memo_survives_list_mutation() {
        // Invocation 1 traverses nodes 1..=10; invocation 2 has node 4
        // removed and node 99 inserted near the front. The memoized middle
        // node (6 for 2 chunks over 10 nodes... index 10/3=3 -> node 4 and
        // 2*10/3=6 -> node 7) mostly still appears in invocation 2, while a
        // stride predictor collapses.
        let inv1 = tuples(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let inv2 = tuples(&[1, 99, 2, 3, 5, 6, 7, 8, 9, 10]);
        let spice = SpiceMemoPredictor::new(3);
        let s = spice.evaluate(&[inv1.clone(), inv2.clone()]);
        assert_eq!(s.predictions, 3);
        assert!(s.accuracy() > 0.6, "accuracy was {}", s.accuracy());

        let mut stride = StridePredictor::new();
        let st = evaluate_predictor(&mut stride, &[inv1, inv2]);
        assert!(st.accuracy() < s.accuracy());
    }

    #[test]
    fn memoize_evenly_spaces_choices() {
        let trace = tuples(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let picks = memoize_evenly(&trace, 3);
        assert_eq!(picks.len(), 3);
        assert_eq!(picks[0], vec![30]);
        assert_eq!(picks[1], vec![50]);
        assert_eq!(picks[2], vec![70]);
        assert!(memoize_evenly(&[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_is_rejected() {
        let _ = SpiceMemoPredictor::new(0);
    }

    #[test]
    fn accuracy_of_empty_stats_is_zero() {
        assert_eq!(PredictorStats::default().accuracy(), 0.0);
    }
}
