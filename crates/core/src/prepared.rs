//! Decode-once program preparation for simulation sweeps.
//!
//! A parallel sweep (the `spice-farm` engine) runs the same workload program
//! under many jobs — sequential and Spice, different thread counts,
//! different seeds. Everything immutable about such a run can be built
//! exactly once and shared: the (possibly transformed) [`Program`], its
//! [`DecodedProgram`] execution form, and the initial memory image with the
//! globals materialized. [`PreparedProgram`] is that bundle, with the
//! shared pieces behind [`Arc`] so instantiating a machine for one more job
//! is an image clone plus two reference-count bumps — no re-decode.
//!
//! [`SimBackend::load`](crate::backend::SimBackend) is itself implemented
//! over [`PreparedProgram::spice`], so a serial run and a sweep job execute
//! the same preparation logic by construction — which is what keeps farm
//! artifacts byte-identical to serially produced ones.
//!
//! Preparation wall-time is recorded in
//! [`build_nanos`](PreparedProgram::build_nanos), so harness-performance
//! reporting can split one-time decode/transform cost from per-cycle
//! simulation dispatch cost.

use std::sync::Arc;
use std::time::Instant;

use spice_ir::exec::{BackendError, LoadOptions};
use spice_ir::interp::FlatMemory;
use spice_ir::lint::lint_spice;
use spice_ir::{DecodedProgram, FuncId, Program};
use spice_sim::{Machine, MachineConfig};

use crate::analysis::LoopAnalysis;
use crate::pipeline::SpiceRunner;
use crate::predictor::PredictorOptions;
use crate::transform::{SpiceOptions, SpiceParallelLoop, SpiceTransform};

/// What kind of execution a [`PreparedProgram`] was prepared for.
#[derive(Debug, Clone)]
enum PreparedKind {
    /// Untransformed program, run one core at a time through
    /// [`run_sequential`](crate::pipeline::run_sequential).
    Sequential,
    /// Spice-transformed program plus the transform's loop description; each
    /// instantiation gets its own [`SpiceRunner`] over the shared loop.
    Spice(Box<SpiceParallelLoop>),
}

/// An immutable, shareable preparation of one program for one machine
/// configuration: decoded form, initial memory image, and (for Spice runs)
/// the transformed loop. Build once, instantiate per job.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    program: Arc<Program>,
    decoded: Arc<DecodedProgram>,
    /// Memory image with globals materialized and the heap zeroed — the
    /// state every job's `init` starts from.
    image: FlatMemory,
    config: MachineConfig,
    kind: PreparedKind,
    build_nanos: u128,
}

impl PreparedProgram {
    /// Prepares `program` for sequential execution on `config`: decode plus
    /// initial image, no transformation.
    #[must_use]
    pub fn sequential(config: MachineConfig, program: Program) -> Self {
        let started = Instant::now();
        let image = FlatMemory::for_program(&program, config.heap_words);
        let decoded = Arc::new(DecodedProgram::new(&program));
        PreparedProgram {
            program: Arc::new(program),
            decoded,
            image,
            config,
            kind: PreparedKind::Sequential,
            build_nanos: started.elapsed().as_nanos(),
        }
    }

    /// Prepares `program` for Spice execution: loop analysis, the Spice
    /// transformation with `threads` threads and `predictor`, and the
    /// machine configuration adjustments [`SimBackend::load`] performs
    /// (cores, heap reservation, conflict detection and granularity).
    ///
    /// [`SimBackend::load`]: crate::backend::SimBackend
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the loop cannot be analysed or
    /// transformed.
    pub fn spice(
        base_config: MachineConfig,
        threads: usize,
        predictor: PredictorOptions,
        mut program: Program,
        kernel: FuncId,
        options: LoadOptions,
    ) -> Result<Self, BackendError> {
        let started = Instant::now();
        let analysis = match options.loop_header {
            Some(h) => LoopAnalysis::analyze(&program, kernel, h),
            None => LoopAnalysis::analyze_outermost(&program, kernel),
        }
        .map_err(|e| BackendError::Analysis(e.to_string()))?;
        let mut predictor = predictor;
        if predictor.initial_work_estimate.is_none() {
            predictor.initial_work_estimate = options.work_estimate;
        }
        let spice = SpiceTransform::new(SpiceOptions {
            threads,
            predictor,
            conflict_policy: options.conflict_policy,
        })
        .apply(&mut program, &analysis)
        .map_err(|e| BackendError::Analysis(e.to_string()))?;
        // The machine's memory is sized by the program's globals plus the
        // larger of the machine's own heap reservation and the one the
        // caller requested — so both backends honor `LoadOptions::heap_words`
        // and a workload cannot fit on one substrate but not the other.
        let mut config = base_config.with_cores(threads);
        config.heap_words = config.heap_words.max(options.heap_words);
        // The machine's conflict detection backs the generated `spec.check`
        // instructions; skip the tracking entirely when the policy asserts
        // independence (the checks are not emitted either).
        config.conflict_detection = options.conflict_policy.detects();
        config.conflict_granularity_log2 = options.conflict_granularity_log2;
        // Redundant with the gate inside `SpiceTransform::apply`, but it
        // re-checks the program *here*, immediately before decode — so any
        // future post-transform rewrite that corrupts the protocol is caught
        // at preparation time in debug builds.
        if cfg!(debug_assertions) {
            if let Err(errs) = lint_spice(&program, &spice.protocol()) {
                let rendered: Vec<String> = errs.iter().map(|e| e.render(&program)).collect();
                panic!(
                    "PreparedProgram::spice produced a program that fails \
                     speculation-safety lints:\n{}",
                    rendered.join("\n")
                );
            }
        }
        let image = FlatMemory::for_program(&program, config.heap_words);
        let decoded = Arc::new(DecodedProgram::new(&program));
        Ok(PreparedProgram {
            program: Arc::new(program),
            decoded,
            image,
            config,
            kind: PreparedKind::Spice(Box::new(spice)),
            build_nanos: started.elapsed().as_nanos(),
        })
    }

    /// Wall-clock nanoseconds the preparation took (analysis + transform +
    /// image + decode). This is the one-time cost a sweep amortizes and a
    /// harness-performance report must not charge to simulation.
    #[must_use]
    pub fn build_nanos(&self) -> u128 {
        self.build_nanos
    }

    /// The machine configuration instantiations run under.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Whether this preparation carries a Spice transformation.
    #[must_use]
    pub fn is_spice(&self) -> bool {
        matches!(self.kind, PreparedKind::Spice(_))
    }

    /// Threads the Spice transform was generated for; 1 for sequential
    /// preparations.
    #[must_use]
    pub fn threads(&self) -> usize {
        match &self.kind {
            PreparedKind::Sequential => 1,
            PreparedKind::Spice(spice) => spice.threads,
        }
    }

    /// Instantiates a fresh machine over the shared program state: a clone
    /// of the initial image, shared `Arc`s for the program and its decoded
    /// form. Mutations of one instantiation never touch another.
    #[must_use]
    pub fn machine(&self) -> Machine {
        Machine::from_shared(
            self.config.clone(),
            Arc::clone(&self.program),
            Arc::clone(&self.decoded),
            self.image.clone(),
        )
    }

    /// A fresh runner for the prepared Spice loop, or `None` for sequential
    /// preparations. Runner state (predictions, feedback) is per-job.
    #[must_use]
    pub fn runner(&self) -> Option<SpiceRunner> {
        match &self.kind {
            PreparedKind::Sequential => None,
            PreparedKind::Spice(spice) => Some(SpiceRunner::new((**spice).clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_sequential;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::{BinOp, Operand};

    fn list_sum_program(capacity: i64) -> (Program, FuncId, i64) {
        let mut program = Program::new();
        let nodes = program.add_global("nodes", capacity * 2);
        let mut b = FunctionBuilder::new("list_sum");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let s = b.binop(BinOp::Add, sum, w);
        b.copy_into(sum, s);
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = program.add_func(b.finish());
        (program, f, nodes)
    }

    fn write_list(mem: &mut FlatMemory, base: i64, weights: &[i64]) {
        for (i, w) in weights.iter().enumerate() {
            let addr = base + 2 * i as i64;
            let next = if i + 1 < weights.len() { addr + 2 } else { 0 };
            mem.write(addr, *w).unwrap();
            mem.write(addr + 1, next).unwrap();
        }
    }

    /// Two machines instantiated from one preparation share the decoded
    /// program (pointer-equal Arcs) yet have fully independent memory.
    #[test]
    fn instantiations_share_decode_but_not_memory() {
        let (program, f, nodes) = list_sum_program(64);
        let prepared = PreparedProgram::sequential(MachineConfig::test_tiny(1), program);
        assert!(!prepared.is_spice());
        assert!(prepared.runner().is_none());
        assert_eq!(prepared.threads(), 1);

        let mut a = prepared.machine();
        let mut b = prepared.machine();
        assert!(std::ptr::eq(a.program(), b.program()), "program is shared");

        write_list(a.mem_mut(), nodes, &[5, 6, 7]);
        write_list(b.mem_mut(), nodes, &[10, 20, 30]);
        let (_, ra) = run_sequential(&mut a, f, &[nodes]).unwrap();
        let (_, rb) = run_sequential(&mut b, f, &[nodes]).unwrap();
        assert_eq!(ra, Some(18));
        assert_eq!(rb, Some(60), "b unaffected by a's memory writes");
    }

    /// A Spice preparation instantiated twice runs both jobs to the correct
    /// result with per-job runner state.
    #[test]
    fn spice_preparation_supports_independent_jobs() {
        let (program, f, nodes) = list_sum_program(64);
        let prepared = PreparedProgram::spice(
            MachineConfig::test_tiny(2),
            2,
            PredictorOptions::default(),
            program,
            f,
            LoadOptions::new(4096, Some(16)),
        )
        .unwrap();
        assert!(prepared.is_spice());
        assert_eq!(prepared.threads(), 2);
        assert!(prepared.build_nanos() > 0);

        for weights in [vec![1i64, 2, 3, 4], vec![5i64; 8]] {
            let expected: i64 = weights.iter().sum();
            let mut machine = prepared.machine();
            let mut runner = prepared.runner().unwrap();
            write_list(machine.mem_mut(), nodes, &weights);
            for _ in 0..3 {
                let report = runner.run_invocation(&mut machine, &[nodes]).unwrap();
                assert_eq!(report.return_value, Some(expected));
            }
        }
    }
}
