//! Baseline TLS execution models (paper §2).
//!
//! The paper motivates Spice by comparing, for the loop of Figure 1(a), the
//! execution schedules of
//!
//! * iteration-granular TLS **without** value speculation (Figure 2), where
//!   the traversal is synchronized and its value forwarded between cores,
//! * iteration-granular TLS **with** per-iteration value prediction
//!   (Figure 3), where a mis-predicted iteration is squashed and re-executed,
//! * Spice's chunked execution (Figure 5).
//!
//! Section 2 analyses these schemes with a three-parameter model: `t1` (the
//! synchronized traversal portion of an iteration), `t2` (the remaining
//! computation) and `t3` (the inter-core forwarding latency). This module
//! implements that model so the schedule figures and their expected speedups
//! can be regenerated with parameters measured on the simulator, alongside
//! the measured Spice numbers.

use serde::{Deserialize, Serialize};

/// The `t1`/`t2`/`t3` timing model of paper §2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopTimingModel {
    /// Cycles per iteration spent in the synchronized traversal part (the
    /// pointer-chasing load and pointer update).
    pub t1: f64,
    /// Cycles per iteration spent in the rest of the loop body.
    pub t2: f64,
    /// Inter-core value forwarding latency in cycles.
    pub t3: f64,
}

impl LoopTimingModel {
    /// Creates a model from measured per-iteration components.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative.
    #[must_use]
    pub fn new(t1: f64, t2: f64, t3: f64) -> Self {
        assert!(
            t1 >= 0.0 && t2 >= 0.0 && t3 >= 0.0,
            "latencies must be non-negative"
        );
        LoopTimingModel { t1, t2, t3 }
    }

    /// Sequential time per iteration.
    #[must_use]
    pub fn sequential_per_iteration(&self) -> f64 {
        self.t1 + self.t2
    }

    /// Expected speedup of iteration-granular TLS without value speculation
    /// on `threads` cores (paper §2.1). The traversal-plus-forwarding chain
    /// limits the initiation interval to `t1 + t3`; the computation can be
    /// overlapped across cores.
    #[must_use]
    pub fn tls_speedup(&self, threads: usize) -> f64 {
        let threads = threads.max(1) as f64;
        let per_iter = self.sequential_per_iteration();
        let initiation = (per_iter / threads).max(self.t1 + self.t3);
        per_iter / initiation
    }

    /// Expected speedup of iteration-granular TLS *with* value prediction of
    /// accuracy `p` on `threads` cores (paper §2.2: `2 / (2 - p)` for two
    /// threads; mis-predicted iterations are squashed and re-executed).
    #[must_use]
    pub fn tls_value_prediction_speedup(&self, threads: usize, p: f64) -> f64 {
        let t = threads.max(1) as f64;
        let p = p.clamp(0.0, 1.0);
        t / (t - (t - 1.0) * p)
    }

    /// Expected speedup of Spice on `threads` cores when the probability
    /// that a memoized chunk boundary is still valid in the next invocation
    /// is `p` (paper §2.3: the same `2 / (2 - p)` form, but `p` is a
    /// per-invocation boundary survival probability instead of a
    /// per-iteration prediction accuracy, and only `threads - 1` predictions
    /// are needed per invocation).
    #[must_use]
    pub fn spice_speedup(&self, threads: usize, p: f64) -> f64 {
        // Identical algebra; the difference is entirely in how large `p` is.
        self.tls_value_prediction_speedup(threads, p)
    }
}

/// Which scheme an execution schedule illustrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Figure 2: TLS, synchronized traversal, no value speculation.
    Tls,
    /// Figure 3: TLS with per-iteration value prediction (one shown
    /// mis-speculation).
    TlsValuePrediction,
    /// Figure 5: Spice chunked execution.
    Spice,
}

/// Renders a schematic two-core execution schedule in the style of the
/// paper's Figures 2, 3 and 5: one line per core, one column per time slot,
/// with the iteration number occupying the slots it executes in.
#[must_use]
pub fn render_schedule(kind: ScheduleKind, iterations: usize) -> Vec<String> {
    let n = iterations.max(2);
    let mut core0: Vec<String> = Vec::new();
    let mut core1: Vec<String> = Vec::new();
    let pad = |v: &mut Vec<String>, k: usize| {
        while v.len() < k {
            v.push("  .".to_string());
        }
    };
    match kind {
        ScheduleKind::Tls => {
            // Odd iterations on core 0, even on core 1; each iteration starts
            // one forwarding slot after its predecessor.
            for i in 1..=n {
                let start = i - 1; // one slot of traversal+forwarding skew per iteration
                let (row, other) = if i % 2 == 1 {
                    (&mut core0, &mut core1)
                } else {
                    (&mut core1, &mut core0)
                };
                pad(row, start);
                row.push(format!("{i:3}"));
                row.push(format!("{i:3}"));
                pad(other, row.len());
            }
        }
        ScheduleKind::TlsValuePrediction => {
            // Iterations start back-to-back thanks to prediction; iteration 4
            // is shown mis-speculated and re-executed, as in Figure 3.
            for i in 1..=n {
                let (row, other) = if i % 2 == 1 {
                    (&mut core0, &mut core1)
                } else {
                    (&mut core1, &mut core0)
                };
                let start = (i - 1) / 2 * 2;
                pad(row, start);
                row.push(format!("{i:3}"));
                row.push(format!("{i:3}"));
                if i == 4 {
                    row.push(format!("{i:3}")); // squash + re-execute
                    row.push(format!("{i:3}"));
                }
                pad(other, row.len().saturating_sub(2));
            }
        }
        ScheduleKind::Spice => {
            // The iteration space is split into two chunks executed
            // concurrently.
            let half = n / 2;
            for i in 1..=half {
                core0.push(format!("{i:3}"));
                core0.push(format!("{i:3}"));
            }
            for i in half + 1..=n {
                core1.push(format!("{i:3}"));
                core1.push(format!("{i:3}"));
            }
        }
    }
    let width = core0.len().max(core1.len());
    pad(&mut core0, width);
    pad(&mut core1, width);
    vec![
        format!("P1 |{}", core0.join("")),
        format!("P2 |{}", core1.join("")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn otterish() -> LoopTimingModel {
        // Traversal dominated by a cache miss, small body, bus-latency
        // forwarding — the regime the paper argues TLS handles poorly.
        LoopTimingModel::new(140.0, 10.0, 16.0)
    }

    #[test]
    fn tls_speedup_limited_by_forwarding_chain() {
        let m = otterish();
        let s2 = m.tls_speedup(2);
        // (t1+t2)/(t1+t3) = 150/156 < 1: TLS actually slows this loop down.
        assert!(s2 < 1.0);
        // Adding cores does not help once the chain is the bottleneck.
        assert!((m.tls_speedup(4) - s2).abs() < 1e-9);
    }

    #[test]
    fn tls_speedup_reaches_ideal_when_computation_dominates() {
        let m = LoopTimingModel::new(10.0, 400.0, 16.0);
        assert!((m.tls_speedup(2) - 2.0).abs() < 1e-9);
        assert!((m.tls_speedup(4) - 4.0).abs() < 1e-9);
        // With enough threads the chain eventually binds again.
        assert!(m.tls_speedup(64) < 64.0);
    }

    #[test]
    fn value_prediction_speedup_matches_paper_formula() {
        let m = otterish();
        assert!((m.tls_value_prediction_speedup(2, 1.0) - 2.0).abs() < 1e-9);
        assert!((m.tls_value_prediction_speedup(2, 0.5) - (2.0 / 1.5)).abs() < 1e-9);
        assert!((m.tls_value_prediction_speedup(2, 0.0) - 1.0).abs() < 1e-9);
        assert!((m.spice_speedup(4, 1.0) - 4.0).abs() < 1e-9);
        // Out-of-range accuracies are clamped.
        assert!((m.spice_speedup(2, 7.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn schedules_have_two_rows_and_show_iterations() {
        for kind in [
            ScheduleKind::Tls,
            ScheduleKind::TlsValuePrediction,
            ScheduleKind::Spice,
        ] {
            let rows = render_schedule(kind, 8);
            assert_eq!(rows.len(), 2);
            assert!(rows[0].starts_with("P1 |"));
            assert!(rows[1].contains('8') || rows[0].contains('8'));
        }
        // Spice splits the space: iteration 1 on P1, iteration 8 on P2.
        let rows = render_schedule(ScheduleKind::Spice, 8);
        assert!(rows[0].contains('1') && !rows[0].contains('8'));
        assert!(rows[1].contains('8'));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_rejected() {
        let _ = LoopTimingModel::new(-1.0, 0.0, 0.0);
    }
}
