//! The Spice transformation (paper §4, Algorithm 1).
//!
//! Given a loop analysis, the transformation rewrites the loop's function
//! into the *main thread* of a Spice parallel loop and generates `t - 1`
//! *speculative worker* functions, wiring up:
//!
//! 1. communication of invariant live-ins and live-outs over scalar channels,
//! 2. initialization of the workers' speculated live-ins from the speculated
//!    values array (`sva`),
//! 3. per-iteration mis-speculation detection (thread `i` compares its
//!    current live-ins against thread `i+1`'s predicted starting live-ins),
//! 4. **both halves** of the value predictor (Algorithm 2): the distributed
//!    half — work counters bumped once per completed iteration and
//!    threshold-triggered memoization into the `sva` — in every thread, and
//!    the **centralized half as generated IR on core 0**: at the start of
//!    every invocation the main thread reads the previous invocation's work
//!    counters, resets the shared arrays and writes the balanced
//!    threshold/row lists, then releases the workers with a
//!    `new_invocation` token on their invariant channels. Its cycles and
//!    channel traffic land in the simulator's per-core reports; no host code
//!    ever writes the predictor arrays,
//! 5. recovery code in every worker (speculative-state abort + acknowledge),
//!    reached through the remote `resteer` issued by the main thread,
//! 6. the post-loop merge in the main thread that commits valid workers in
//!    order, combines reductions and live-outs, and squashes the rest.

use serde::{Deserialize, Serialize};

use spice_ir::builder::FunctionBuilder;
use spice_ir::exec::ConflictPolicy;
use spice_ir::lint::{lint_spice, LintError, MainShape, SpiceProtocol, WorkerProtocol};
use spice_ir::reduction::ReductionKind;
use spice_ir::verify::{verify_program, VerifyError};
use spice_ir::{BinOp, BlockId, FuncId, Inst, Operand, Program, Reg};

use crate::analysis::{Applicability, LoopAnalysis};
use crate::predictor::{PredictorLayout, PredictorOptions, NEVER};

/// Options controlling the transformation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpiceOptions {
    /// Total number of threads (main + speculative workers). Must be ≥ 2.
    pub threads: usize,
    /// Predictor behaviour (re-memoization, load balancing, initial
    /// estimate) — baked into the generated centralized-step code on core 0
    /// and into the seeded work counter, so a single options value
    /// configures a whole run at transform time.
    pub predictor: PredictorOptions,
    /// How cross-chunk memory dependences are treated. Under the default
    /// [`ConflictPolicy::Detect`], the main thread's merge chain emits a
    /// `spec.check` per worker and, on a violation, squashes from that
    /// worker and resumes the loop itself from the violated boundary.
    pub conflict_policy: ConflictPolicy,
}

impl SpiceOptions {
    /// Options for `threads` threads with the default predictor behaviour.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        SpiceOptions {
            threads,
            predictor: PredictorOptions::default(),
            conflict_policy: ConflictPolicy::default(),
        }
    }

    /// Options for `threads` threads with a first-invocation work estimate —
    /// the common case for workloads that know their iteration count, so the
    /// very first centralized step already has a work model to plan from.
    #[must_use]
    pub fn with_threads_and_estimate(threads: usize, iterations: u64) -> Self {
        SpiceOptions {
            threads,
            predictor: PredictorOptions {
                initial_work_estimate: Some(iterations),
                ..PredictorOptions::default()
            },
            conflict_policy: ConflictPolicy::default(),
        }
    }
}

impl Default for SpiceOptions {
    fn default() -> Self {
        SpiceOptions::with_threads(4)
    }
}

/// Errors produced by the transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The loop cannot be Spice-parallelized.
    NotApplicable(Applicability),
    /// The transformed program failed structural verification — a bug in the
    /// transformation, reported rather than silently mis-executed.
    Verification(Vec<VerifyError>),
    /// The transformed program verified but broke the Spice protocol
    /// contract (channel framing, spec.check placement, exemption coverage
    /// or boundary shape) — likewise a transformation bug.
    Lint(Vec<LintError>),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NotApplicable(a) => write!(f, "loop not applicable: {a}"),
            TransformError::Verification(errs) => {
                write!(
                    f,
                    "transformed program failed verification: {} errors",
                    errs.len()
                )
            }
            TransformError::Lint(errs) => {
                write!(
                    f,
                    "transformed program failed speculation-safety lints: {} errors",
                    errs.len()
                )
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// How the main thread combines one group of live-out values received from a
/// worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombineKind {
    /// Accumulate with a reduction operation; the first register of the group
    /// is the accumulator, the rest are payloads selected under the same
    /// condition (argmin/argmax).
    Reduction(ReductionKindSpec),
    /// Overwrite the main thread's value (later workers overwrite earlier
    /// ones, so the last valid worker — the one that reached the real loop
    /// exit — wins).
    Overwrite,
}

/// Serializable mirror of [`ReductionKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReductionKindSpec {
    /// Associative/commutative binop accumulation.
    Binop(BinOp),
    /// Select-based minimum.
    Min,
    /// Select-based maximum.
    Max,
}

impl From<ReductionKind> for ReductionKindSpec {
    fn from(k: ReductionKind) -> Self {
        match k {
            ReductionKind::Binop(op) => ReductionKindSpec::Binop(op),
            ReductionKind::Min => ReductionKindSpec::Min,
            ReductionKind::Max => ReductionKindSpec::Max,
        }
    }
}

/// One group of live-out registers communicated from workers to the main
/// thread, in main-function register numbering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveOutGroup {
    /// Registers of the group (accumulator first for reductions).
    pub regs: Vec<Reg>,
    /// How the group combines.
    pub kind: CombineKind,
}

/// Channels connecting the main thread with one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerChannels {
    /// Main → worker: invariant live-ins, sent once per invocation.
    pub invariant: i64,
    /// Worker → main: 1 if the worker observed its successor's predicted
    /// live-ins during its chunk (successor speculated correctly), 0 if it
    /// ran to the real loop exit.
    pub status: i64,
    /// Main → worker: permission to commit.
    pub command: i64,
    /// Worker → main: live-out values, in [`SpiceParallelLoop::liveouts`]
    /// order.
    pub liveout: i64,
    /// Worker → main: acknowledgement that commit or recovery completed.
    pub ack: i64,
}

/// One generated speculative worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerInfo {
    /// The worker's function.
    pub func: FuncId,
    /// Thread id (main thread is 0, workers are 1..).
    pub tid: usize,
    /// Core the worker is expected to run on (equal to `tid`).
    pub core: usize,
    /// Entry block of the worker's recovery code — the target of the remote
    /// resteer issued on a squash.
    pub recovery_block: BlockId,
    /// The channels connecting this worker with the main thread.
    pub channels: WorkerChannels,
}

/// The result of applying the Spice transformation to one loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpiceParallelLoop {
    /// The (rewritten) function containing the original loop; runs as the
    /// non-speculative main thread on core 0.
    pub main: FuncId,
    /// The generated speculative workers, in thread order.
    pub workers: Vec<WorkerInfo>,
    /// Shared-memory layout of the value predictor.
    pub layout: PredictorLayout,
    /// Total thread count.
    pub threads: usize,
    /// The speculated live-in registers (set `S` of Algorithm 1), in the
    /// main function's register numbering; their order defines the layout of
    /// one `sva` row.
    pub speculated: Vec<Reg>,
    /// Invariant live-ins actually read inside the loop, in the order they
    /// are sent to each worker.
    pub invariants_sent: Vec<Reg>,
    /// Live-out groups, in the order they travel over the live-out channels.
    pub liveouts: Vec<LiveOutGroup>,
    /// The main function's protocol skeleton blocks, recorded at rewrite
    /// time so the speculation-safety lints check structure instead of
    /// guessing from labels.
    pub shape: MainShape,
    /// Blocks `0..main_program_blocks` of the main function are original
    /// program code; everything from there on was generated.
    pub main_program_blocks: usize,
    /// Cloned loop-body blocks per worker (ids `1..=worker_body_blocks`).
    pub worker_body_blocks: usize,
    /// Whether the merge chain was generated with conflict detection.
    pub conflict_detection: bool,
}

impl SpiceParallelLoop {
    /// Number of scalar values sent per worker on its live-out channel.
    #[must_use]
    pub fn liveout_width(&self) -> usize {
        self.liveouts.iter().map(|g| g.regs.len()).sum()
    }

    /// The protocol contract this transformed loop was generated under, in
    /// the IR-level terms [`spice_ir::lint::lint_spice`] checks.
    #[must_use]
    pub fn protocol(&self) -> SpiceProtocol {
        SpiceProtocol {
            main: self.main,
            main_program_blocks: self.main_program_blocks,
            shape: self.shape,
            workers: self
                .workers
                .iter()
                .map(|w| WorkerProtocol {
                    func: w.func,
                    core: w.core as i64,
                    recovery_block: w.recovery_block,
                    invariant: w.channels.invariant,
                    status: w.channels.status,
                    command: w.channels.command,
                    liveout: w.channels.liveout,
                    ack: w.channels.ack,
                    body_blocks: self.worker_body_blocks,
                })
                .collect(),
            invariant_payload: self.invariants_sent.len(),
            liveout_width: self.liveout_width(),
            detect: self.conflict_detection,
            exempt_range: self.layout.address_range(),
        }
    }
}

/// The Spice transformation.
#[derive(Debug, Clone)]
pub struct SpiceTransform {
    options: SpiceOptions,
}

impl SpiceTransform {
    /// Creates a transformation with the given options.
    #[must_use]
    pub fn new(options: SpiceOptions) -> Self {
        SpiceTransform { options }
    }

    /// Applies the transformation to the loop described by `analysis`,
    /// rewriting `program` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::NotApplicable`] when fewer than two threads
    /// are requested and [`TransformError::Verification`] if the generated
    /// program is structurally broken (a transformation bug).
    pub fn apply(
        &self,
        program: &mut Program,
        analysis: &LoopAnalysis,
    ) -> Result<SpiceParallelLoop, TransformError> {
        let t = self.options.threads;
        if t < 2 {
            return Err(TransformError::NotApplicable(Applicability::TooFewThreads));
        }

        let layout = PredictorLayout::allocate_seeded(
            program,
            t,
            analysis.speculated.len(),
            self.options.predictor.initial_work_estimate,
        );

        // Registers the loop body actually mentions (used to filter invariant
        // live-ins that are merely live *through* the loop).
        let src = program.func(analysis.func).clone();
        let mut loop_regs: std::collections::HashSet<Reg> = std::collections::HashSet::new();
        for &b in &analysis.blocks {
            let blk = src.block(b);
            for inst in &blk.insts {
                loop_regs.extend(inst.uses());
                if let Some(d) = inst.def() {
                    loop_regs.insert(d);
                }
            }
            loop_regs.extend(blk.terminator.uses());
        }
        let invariants_sent: Vec<Reg> = analysis
            .live
            .invariant
            .iter()
            .copied()
            .filter(|r| loop_regs.contains(r))
            .collect();

        let liveouts = build_liveout_groups(analysis);

        // Per-worker channels.
        let mut channels = Vec::new();
        for _ in 0..t - 1 {
            channels.push(WorkerChannels {
                invariant: program.fresh_channel(),
                status: program.fresh_channel(),
                command: program.fresh_channel(),
                liveout: program.fresh_channel(),
                ack: program.fresh_channel(),
            });
        }

        // Generate workers from the pristine copy of the main function.
        let mut workers = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for wi in 0..t - 1 {
            let (func, recovery_block) = build_worker(
                program,
                &src,
                analysis,
                &layout,
                &liveouts,
                &invariants_sent,
                wi,
                t,
                channels[wi],
            );
            workers.push(WorkerInfo {
                func,
                tid: wi + 1,
                core: wi + 1,
                recovery_block,
                channels: channels[wi],
            });
        }

        // Rewrite the main function in place. Blocks below the pre-rewrite
        // count stay original program code; the rewrite only appends.
        let main_program_blocks = src.blocks.len();
        let shape = rewrite_main(
            program,
            analysis,
            &layout,
            &liveouts,
            &invariants_sent,
            &workers,
            self.options.conflict_policy,
            &self.options.predictor,
        );

        if let Err(errs) = verify_program(program) {
            return Err(TransformError::Verification(errs));
        }

        let spice = SpiceParallelLoop {
            main: analysis.func,
            workers,
            layout,
            threads: t,
            speculated: analysis.speculated.clone(),
            invariants_sent,
            liveouts,
            shape,
            main_program_blocks,
            worker_body_blocks: analysis.blocks.len(),
            conflict_detection: self.options.conflict_policy.detects(),
        };

        // Every transform output must honor the protocol contract it was
        // generated under; a lint failure here is a transformation bug.
        if let Err(errs) = lint_spice(program, &spice.protocol()) {
            return Err(TransformError::Lint(errs));
        }

        Ok(spice)
    }
}

/// Builds the canonical live-out communication order.
fn build_liveout_groups(analysis: &LoopAnalysis) -> Vec<LiveOutGroup> {
    let mut groups = Vec::new();
    let mut covered: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    let mut reductions = analysis.reductions.reductions.clone();
    reductions.sort_by_key(|r| r.reg);
    for red in &reductions {
        let mut regs = vec![red.reg];
        regs.extend(red.payloads.iter().copied());
        covered.extend(regs.iter().copied());
        groups.push(LiveOutGroup {
            regs,
            kind: CombineKind::Reduction(red.kind.into()),
        });
    }
    let mut rest: Vec<Reg> = analysis
        .live
        .live_outs
        .iter()
        .chain(analysis.speculated.iter())
        .copied()
        .filter(|r| !covered.contains(r))
        .collect();
    rest.sort();
    rest.dedup();
    for r in rest {
        groups.push(LiveOutGroup {
            regs: vec![r],
            kind: CombineKind::Overwrite,
        });
    }
    groups
}

/// Emits the Algorithm 2 memoization blocks into `b`. The caller must have
/// positioned `header_target` as the block to continue with.
///
/// `my_work` is *not* incremented here: the work counter counts completed
/// iterations and is bumped on the latch path (see the `spice.bump` blocks),
/// so the final pass through detection on loop exit does not inflate it.
/// Firing on `my_work >= threshold` therefore memoizes the live-ins after
/// exactly `threshold` completed iterations — the same point at which the
/// native runtime memoizes (`iterations >= threshold` at its loop top),
/// keeping the two backends' predictor states in lockstep.
#[allow(clippy::too_many_arguments)]
fn emit_memoization(
    b: &mut FunctionBuilder,
    layout: &PredictorLayout,
    tid: usize,
    my_work: Reg,
    memo_idx: Reg,
    spec_values: &[Reg],
    memo_bb: BlockId,
    header_target: BlockId,
) {
    let do_memo = b.new_labeled_block("spice.do_memo");
    b.switch_to(memo_bb);
    let svat_addr = b.binop(BinOp::Add, memo_idx, layout.svat_addr(tid, 0));
    let thresh = b.load(svat_addr, 0);
    let fire = b.binop(BinOp::Ge, my_work, thresh);
    b.cond_br(fire, do_memo, header_target);

    b.switch_to(do_memo);
    let svai_addr = b.binop(BinOp::Add, memo_idx, layout.svai_addr(tid, 0));
    let row = b.load(svai_addr, 0);
    let row_off = b.binop(BinOp::Mul, row, layout.spec_width as i64);
    let row_addr = b.binop(BinOp::Add, row_off, layout.sva_base);
    for (j, r) in spec_values.iter().enumerate() {
        b.store(*r, row_addr, j as i64);
    }
    let idx2 = b.binop(BinOp::Add, memo_idx, 1i64);
    b.copy_into(memo_idx, idx2);
    b.br(header_target);
}

/// Emits the latch-side work bump block: each completed iteration (back-edge
/// traversal) counts one unit of predictor work before re-entering
/// detection. The entry pass and the final exit pass do not count, so the
/// work counters equal completed iterations on every thread — the same
/// definition the native runtime uses.
fn emit_work_bump(b: &mut FunctionBuilder, bump_bb: BlockId, my_work: Reg, check_bb: BlockId) {
    b.switch_to(bump_bb);
    let w2 = b.binop(BinOp::Add, my_work, 1i64);
    b.copy_into(my_work, w2);
    b.br(check_bb);
}

/// Emits the centralized half of Algorithm 2 as IR, entered from the main
/// function's preheader at the start of every invocation — *before* the
/// `new_invocation` token releases the workers, so its reads and writes of
/// the shared arrays are ordered against everything else by construction.
///
/// The generated code mirrors [`crate::predictor::plan`] exactly:
///
/// 1. read the per-thread work counters of the previous invocation, sum
///    them, and reset the counters and the status word;
/// 2. unless memoize-once already produced a plan, and provided any work
///    was observed, place the `t - 1` chunk boundaries: boundary `k` sits at
///    global work `⌊k·total/t⌋`, belongs to the first thread whose work
///    range contains it (zero-work threads skipped — computed as a
///    descending select chain so the lowest matching thread wins), and is
///    appended to that thread's threshold/row lists at its cursor
///    (boundaries are processed in ascending order, so each list stays
///    sorted);
/// 3. terminate every thread's list with one ∞ sentinel entry. The
///    distributed half scans its list strictly forward from entry 0 and
///    can never advance past a sentinel, so entries beyond it need no
///    clearing — writing one terminator per thread replaces a full-array
///    reset and keeps the step's memory traffic proportional to the plan.
///
/// The per-boundary loop is fully unrolled: `t` is a transform-time
/// constant, and the handful of arithmetic operations per boundary is
/// exactly the cost the paper attributes to the centralized step — now paid
/// in simulated cycles (and cache/coherence traffic) on core 0 instead of
/// invisibly on the host.
fn emit_centralized(
    b: &mut FunctionBuilder,
    layout: &PredictorLayout,
    options: &PredictorOptions,
    entry_bb: BlockId,
    done_bb: BlockId,
) {
    let t = layout.threads;
    b.switch_to(entry_bb);
    // 1. Read the previous invocation's counters, then reset them.
    let work: Vec<Reg> = (0..t).map(|tid| b.load(layout.work_addr(tid), 0)).collect();
    let mut total = work[0];
    for w in &work[1..] {
        total = b.binop(BinOp::Add, total, *w);
    }
    for tid in 0..t {
        b.store(0i64, layout.work_addr(tid), 0);
    }
    b.store(0i64, layout.status_base, 0);

    // 2. Gate: memoize-once short-circuits to the clear path once a plan
    // was produced; so does an empty work model.
    let plan_bb = b.new_labeled_block("spice.central.plan");
    let clear_bb = b.new_labeled_block("spice.central.clear");
    if !options.rememoize {
        let fresh_bb = b.new_labeled_block("spice.central.fresh");
        let flag = b.load(layout.flag_base, 0);
        b.cond_br(flag, clear_bb, fresh_bb);
        b.switch_to(fresh_bb);
    }
    let have_work = b.binop(BinOp::Ne, total, 0i64);
    b.cond_br(have_work, plan_bb, clear_bb);

    // No plan this invocation: empty every list with a sentinel at entry 0.
    b.switch_to(clear_bb);
    for tid in 0..t {
        b.store(NEVER, layout.svat_addr(tid, 0), 0);
    }
    b.br(done_bb);

    b.switch_to(plan_bb);
    if options.load_balance {
        for tid in 0..t {
            b.store(0i64, layout.cidx_addr(tid), 0);
        }
        let mut prefix: Vec<Reg> = Vec::with_capacity(t + 1);
        prefix.push(b.copy(0i64));
        for i in 0..t {
            let p = b.binop(BinOp::Add, prefix[i], work[i]);
            prefix.push(p);
        }
        for k in 1..t {
            let scaled = b.binop(BinOp::Mul, total, k as i64);
            let g = b.binop(BinOp::Div, scaled, t as i64);
            let mut tid = b.copy((t - 1) as i64);
            let mut tid_prefix = b.copy(prefix[t - 1]);
            for i in (0..t).rev() {
                let active = b.binop(BinOp::Gt, work[i], 0i64);
                let contains = b.binop(BinOp::Le, g, prefix[i + 1]);
                let hit = b.binop(BinOp::And, active, contains);
                tid = b.select(hit, i as i64, tid);
                tid_prefix = b.select(hit, prefix[i], tid_prefix);
            }
            let raw = b.binop(BinOp::Sub, g, tid_prefix);
            let threshold = b.binop(BinOp::Max, raw, 1i64);
            let cursor_addr = b.binop(BinOp::Add, tid, layout.cidx_base);
            let cursor = b.load(cursor_addr, 0);
            let list_off = b.binop(BinOp::Mul, tid, layout.max_entries as i64);
            let slot = b.binop(BinOp::Add, list_off, cursor);
            let svat_slot = b.binop(BinOp::Add, slot, layout.svat_base);
            b.store(threshold, svat_slot, 0);
            let svai_slot = b.binop(BinOp::Add, slot, layout.svai_base);
            b.store((k - 1) as i64, svai_slot, 0);
            let bumped = b.binop(BinOp::Add, cursor, 1i64);
            b.store(bumped, cursor_addr, 0);
        }
        // 3. Terminators, one per thread, at each final cursor.
        for tid in 0..t {
            let cursor = b.load(layout.cidx_addr(tid), 0);
            let slot = b.binop(BinOp::Add, cursor, layout.svat_addr(tid, 0));
            b.store(NEVER, slot, 0);
        }
    } else {
        // Without load balancing every boundary belongs to thread 0 and the
        // local threshold equals the global one; terminators are static.
        for k in 1..t {
            let scaled = b.binop(BinOp::Mul, total, k as i64);
            let g = b.binop(BinOp::Div, scaled, t as i64);
            let threshold = b.binop(BinOp::Max, g, 1i64);
            b.store(threshold, layout.svat_addr(0, k - 1), 0);
            b.store((k - 1) as i64, layout.svai_addr(0, k - 1), 0);
        }
        b.store(NEVER, layout.svat_addr(0, t - 1), 0);
        for tid in 1..t {
            b.store(NEVER, layout.svat_addr(tid, 0), 0);
        }
    }
    if !options.rememoize {
        b.store(1i64, layout.flag_base, 0);
    }
    b.br(done_bb);
}

/// Emits the live-in comparison of the detection code: `all_eq = (r0 == p0)
/// && (r1 == p1) && ...`.
fn emit_compare_all(b: &mut FunctionBuilder, current: &[Reg], predicted: &[Reg]) -> Reg {
    let mut all_eq = b.binop(BinOp::Eq, current[0], predicted[0]);
    for (r, p) in current.iter().zip(predicted).skip(1) {
        let e = b.binop(BinOp::Eq, *r, *p);
        all_eq = b.binop(BinOp::And, all_eq, e);
    }
    all_eq
}

/// Builds one speculative worker function. Returns its id and the id of its
/// recovery block.
#[allow(clippy::too_many_arguments)]
fn build_worker(
    program: &mut Program,
    src: &spice_ir::Function,
    analysis: &LoopAnalysis,
    layout: &PredictorLayout,
    liveouts: &[LiveOutGroup],
    invariants_sent: &[Reg],
    wi: usize,
    threads: usize,
    chans: WorkerChannels,
) -> (FuncId, BlockId) {
    let tid = wi + 1;
    let is_last = wi == threads - 2;
    let mut b = FunctionBuilder::new(format!("{}.spice.w{}", src.name, tid));

    // Clone the loop body.
    let (bmap, rmap) = b.func_mut().import_blocks(src, &analysis.blocks, &[]);

    // Helper: worker-local register for a main-function register, if the loop
    // body mentions it.
    let local = |r: Reg| -> Option<Reg> { rmap.get(&r).copied() };

    // Auxiliary blocks.
    let check_bb = b.new_labeled_block("spice.check");
    let bump_bb = b.new_labeled_block("spice.bump");
    let memo_bb = b.new_labeled_block("spice.memo");
    let hit_bb = b.new_labeled_block("spice.hit");
    let exit_bb = b.new_labeled_block("spice.exit");
    let recovery_bb = b.new_labeled_block("spice.recovery");
    let cloned_header = bmap[&analysis.header];

    // Fix up the cloned terminators: rebuild them from the source so that
    // in-loop targets follow the block map and the loop exit leads to the
    // worker's exit block (out-of-loop targets must not leak stale ids).
    for &sb in &analysis.blocks {
        let nb = bmap[&sb];
        let mut term = src.block(sb).terminator.clone();
        term.remap_regs(|r| rmap[&r]);
        term.remap_blocks(|t| bmap.get(&t).copied().unwrap_or(exit_bb));
        b.func_mut().block_mut(nb).terminator = term;
    }

    // Preamble (entry block). The first receive is the `new_invocation`
    // token: this pre-spawned worker blocks here until the main thread's
    // centralized step has rewritten the predictor arrays for the new
    // invocation, so every later read of `sva`/`svat`/`svai` is ordered
    // after those writes (the paper's pre-spawned-worker handshake).
    let _token = b.recv(chans.invariant);
    for r in invariants_sent {
        if let Some(lr) = local(*r) {
            b.recv_into(lr, chans.invariant);
        } else {
            // Keep channel framing consistent even if this worker's clone
            // never mentions the register.
            let _ = b.recv(chans.invariant);
        }
    }
    for (j, r) in analysis.speculated.iter().enumerate() {
        let lr = local(*r).expect("speculated live-ins are used in the loop");
        b.load_into(lr, layout.sva_addr(wi, j), 0);
    }
    for red in &analysis.reductions.reductions {
        if let Some(acc) = local(red.reg) {
            b.copy_into(acc, red.kind.identity());
        }
        for p in &red.payloads {
            if let Some(pl) = local(*p) {
                b.copy_into(pl, 0i64);
            }
        }
    }
    let status = b.copy(0i64);
    let my_work = b.copy(0i64);
    let memo_idx = b.copy(0i64);
    // Successor's predicted live-ins (for all but the last worker).
    let mut pred_regs = Vec::new();
    if !is_last {
        for (j, _) in analysis.speculated.iter().enumerate() {
            pred_regs.push(b.load(layout.sva_addr(wi + 1, j), 0));
        }
    }
    b.push(Inst::SpecBegin);
    b.br(check_bb);

    // Detection (check) block.
    let spec_locals: Vec<Reg> = analysis
        .speculated
        .iter()
        .map(|r| local(*r).expect("speculated live-ins are used in the loop"))
        .collect();
    b.switch_to(check_bb);
    if is_last {
        b.br(memo_bb);
    } else {
        let all_eq = emit_compare_all(&mut b, &spec_locals, &pred_regs);
        b.cond_br(all_eq, hit_bb, memo_bb);
    }

    // Memoization blocks, plus the latch-side work bump.
    emit_memoization(
        &mut b,
        layout,
        tid,
        my_work,
        memo_idx,
        &spec_locals,
        memo_bb,
        cloned_header,
    );
    emit_work_bump(&mut b, bump_bb, my_work, check_bb);

    // Hit block (successor speculated correctly).
    b.switch_to(hit_bb);
    b.copy_into(status, 1i64);
    b.br(exit_bb);

    // Exit block: report status, wait for the commit command, publish state.
    b.switch_to(exit_bb);
    b.send(chans.status, status);
    let _cmd = b.recv(chans.command);
    b.push(Inst::SpecCommit);
    b.store(my_work, layout.work_addr(tid), 0);
    for group in liveouts {
        for r in &group.regs {
            match local(*r) {
                Some(lr) => b.send(chans.liveout, lr),
                None => b.send(chans.liveout, 0i64),
            }
        }
    }
    b.send(chans.ack, 1i64);
    b.push(Inst::Halt);
    b.ret(None);

    // Recovery block: squash target of the remote resteer.
    b.switch_to(recovery_bb);
    b.push(Inst::SpecAbort);
    b.send(chans.ack, 1i64);
    b.push(Inst::Halt);
    b.ret(None);

    // Redirect back edges of the cloned loop through the work bump and the
    // check block: every cloned predecessor of the cloned header now counts
    // the completed iteration, then runs detection.
    let cloned_blocks: Vec<BlockId> = analysis.blocks.iter().map(|sb| bmap[sb]).collect();
    for nb in &cloned_blocks {
        let term = &mut b.func_mut().block_mut(*nb).terminator;
        term.remap_blocks(|t| if t == cloned_header { bump_bb } else { t });
    }

    let func = program.add_func(b.finish());
    (func, recovery_bb)
}

/// Rewrites the main function in place.
///
/// Control-flow shape of the rewritten function (conflict handling under
/// [`ConflictPolicy::Detect`]):
///
/// ```text
/// preheader ─▶ central: read work, reset arrays ──▶ central.plan ─▶ dispatch
///                                  └──(no work / memoize-once)──▶ dispatch
/// dispatch: new_invocation tokens + invariants ─▶ check
/// check ──resumed──▶ memo ─▶ header ─▶ body … latch ─▶ bump(work+=1) ─▶ check
///   └─▶ compare ──hit──▶ merge ──resumed──▶ finish
///           └─▶ memo        └─▶ chain ─▶ w1.dispatch …
/// w(k).dispatch ─valid──▶ w(k).valid: recv status; spec.check core k
///                │          ├─conflict─▶ w(k).conflict: resteer, ack,
///                │          │            still_valid=0, need_resume=1
///                │          └─▶ w(k).commit: command, live-outs, ack
///                └─▶ w(k).squash: resteer, ack
/// tail ──need_resume──▶ resume: resumed=1 ─▶ check   (main re-executes
///   └─▶ finish: publish predictor feedback ─▶ exit    from the violated
///                                                     boundary itself)
/// ```
///
/// `central` is the centralized half of Algorithm 2 running on core 0 (see
/// [`emit_centralized`]); the workers block on the `new_invocation` token
/// until `dispatch` releases them, so the centralized step is ordered before
/// every worker access to the predictor arrays.
#[allow(clippy::too_many_arguments)]
fn rewrite_main(
    program: &mut Program,
    analysis: &LoopAnalysis,
    layout: &PredictorLayout,
    liveouts: &[LiveOutGroup],
    invariants_sent: &[Reg],
    workers: &[WorkerInfo],
    conflict_policy: ConflictPolicy,
    predictor: &PredictorOptions,
) -> MainShape {
    let func = analysis.func;
    let exit_from = analysis.exit_edge.0;
    let exit_target = analysis.exit_edge.1;
    let header = analysis.header;

    // Move the main function into a builder so the new blocks can be emitted
    // with the same API the workers use; it is moved back at the end.
    let mut owned = std::mem::replace(
        program.func_mut(func),
        spice_ir::Function::new("spice.placeholder"),
    );
    let mut b = FunctionBuilder::new(owned.name.clone());
    std::mem::swap(b.func_mut(), &mut owned);

    let success = b.fresh();
    let my_work = b.fresh();
    let memo_idx = b.fresh();
    let valid_count = b.fresh();
    let still_valid = b.fresh();
    // Set when a conflict squash leaves un-executed iterations behind: the
    // main thread must re-enter the loop from the violated boundary. A
    // status-0 chain break needs no resume (that worker ran to the exit).
    let need_resume = b.fresh();
    // Set while the main thread is re-executing after a squash: boundary
    // detection is off (the old boundaries are behind it) and the loop exit
    // bypasses the already-run merge chain.
    let resumed = b.fresh();
    let pred_regs: Vec<Reg> = analysis.speculated.iter().map(|_| b.fresh()).collect();

    let central_bb = b.new_labeled_block("spice.central");
    let dispatch_bb = b.new_labeled_block("spice.dispatch");
    let check_bb = b.new_labeled_block("spice.check");
    let bump_bb = b.new_labeled_block("spice.bump");
    let compare_bb = b.new_labeled_block("spice.compare");
    let memo_bb = b.new_labeled_block("spice.memo");
    let hit_bb = b.new_labeled_block("spice.hit");
    let merge_bb = b.new_labeled_block("spice.merge");
    let chain_bb = b.new_labeled_block("spice.chain");
    let tail_bb = b.new_labeled_block("spice.tail");
    let resume_bb = b.new_labeled_block("spice.resume");
    let finish_bb = b.new_labeled_block("spice.finish");

    // --- Centralized predictor step (Algorithm 2's second half), on core 0,
    // entered from the preheader at the start of every invocation.
    emit_centralized(&mut b, layout, predictor, central_bb, dispatch_bb);

    // --- Dispatch: release every pre-spawned worker with its
    // `new_invocation` token, send the invariant live-ins, load this
    // invocation's boundary prediction and initialize the loop state.
    b.switch_to(dispatch_bb);
    for w in workers {
        b.send(w.channels.invariant, 1i64);
        for r in invariants_sent {
            b.send(w.channels.invariant, *r);
        }
    }
    b.copy_into(success, 0i64);
    b.copy_into(my_work, 0i64);
    b.copy_into(memo_idx, 0i64);
    b.copy_into(valid_count, 0i64);
    b.copy_into(need_resume, 0i64);
    b.copy_into(resumed, 0i64);
    for (j, p) in pred_regs.iter().enumerate() {
        b.load_into(*p, layout.sva_addr(0, j), 0);
    }
    b.br(check_bb);

    // --- Latch-side work bump: one predictor work unit per completed
    // iteration.
    emit_work_bump(&mut b, bump_bb, my_work, check_bb);

    // --- Detection block: after a squash-resume, the memoized boundaries
    // are behind the main thread, so the comparison is skipped.
    b.switch_to(check_bb);
    b.cond_br(resumed, memo_bb, compare_bb);

    b.switch_to(compare_bb);
    let all_eq = emit_compare_all(&mut b, &analysis.speculated, &pred_regs);
    b.cond_br(all_eq, hit_bb, memo_bb);

    // --- Memoization (thread 0).
    emit_memoization(
        &mut b,
        layout,
        0,
        my_work,
        memo_idx,
        &analysis.speculated,
        memo_bb,
        header,
    );

    // --- Hit block.
    b.switch_to(hit_bb);
    b.copy_into(success, 1i64);
    b.br(merge_bb);

    // --- Merge chain. The loop exit lands here; after a squash-resume the
    // chain has already run, so fall through to the feedback stores.
    b.switch_to(merge_bb);
    b.cond_br(resumed, finish_bb, chain_bb);

    b.switch_to(chain_bb);
    b.copy_into(still_valid, success);
    let mut next_dispatch = b.new_labeled_block("spice.w1.dispatch");
    b.br(next_dispatch);
    for (i, w) in workers.iter().enumerate() {
        let dispatch = next_dispatch;
        let valid_bb = b.new_labeled_block(format!("spice.w{}.valid", w.tid));
        let squash_bb = b.new_labeled_block(format!("spice.w{}.squash", w.tid));
        next_dispatch = if i + 1 < workers.len() {
            b.new_labeled_block(format!("spice.w{}.dispatch", w.tid + 1))
        } else {
            tail_bb
        };

        b.switch_to(dispatch);
        b.cond_br(still_valid, valid_bb, squash_bb);

        // Valid worker: its start boundary was validated and it finished its
        // chunk. Under ConflictPolicy::Detect, ask the memory system whether
        // the chunk's speculative read set hit a word committed earlier this
        // invocation (the main chunk's stores or an earlier worker's commit)
        // before granting the commit — the paper's hardware conflict check,
        // placed exactly at the in-order commit point.
        b.switch_to(valid_bb);
        let status = b.recv(w.channels.status);
        if conflict_policy.detects() {
            let conflict_bb = b.new_labeled_block(format!("spice.w{}.conflict", w.tid));
            let commit_bb = b.new_labeled_block(format!("spice.w{}.commit", w.tid));
            let conflict = b.spec_check(w.core as i64);
            b.cond_br(conflict, conflict_bb, commit_bb);

            // Dependence violation: squash this worker (its buffered stores
            // are discarded by the recovery code) and remember that the main
            // thread must re-execute from this worker's start boundary — its
            // cursor registers already hold exactly that state (the last
            // committed chunk ended there, or the main chunk did for w1).
            b.switch_to(conflict_bb);
            b.push(Inst::Resteer {
                core: Operand::Imm(w.core as i64),
                target: w.recovery_block,
            });
            let _ack = b.recv(w.channels.ack);
            b.copy_into(still_valid, 0i64);
            b.copy_into(need_resume, 1i64);
            b.br(next_dispatch);

            b.switch_to(commit_bb);
        }
        b.send(w.channels.command, 1i64);
        for group in liveouts {
            let tmps: Vec<Reg> = group
                .regs
                .iter()
                .map(|_| b.recv(w.channels.liveout))
                .collect();
            match &group.kind {
                CombineKind::Reduction(kind) => {
                    let acc = group.regs[0];
                    match kind {
                        ReductionKindSpec::Binop(op) => {
                            let combined = b.binop(*op, acc, tmps[0]);
                            b.copy_into(acc, combined);
                        }
                        ReductionKindSpec::Min | ReductionKindSpec::Max => {
                            let cmp = if matches!(kind, ReductionKindSpec::Min) {
                                BinOp::Lt
                            } else {
                                BinOp::Gt
                            };
                            let cond = b.binop(cmp, tmps[0], acc);
                            let new_acc = b.select(cond, tmps[0], acc);
                            b.copy_into(acc, new_acc);
                            for (payload, tmp) in group.regs[1..].iter().zip(&tmps[1..]) {
                                let np = b.select(cond, *tmp, *payload);
                                b.copy_into(*payload, np);
                            }
                        }
                    }
                }
                CombineKind::Overwrite => {
                    b.copy_into(group.regs[0], tmps[0]);
                }
            }
        }
        let _ack = b.recv(w.channels.ack);
        let vc = b.binop(BinOp::Add, valid_count, 1i64);
        b.copy_into(valid_count, vc);
        b.copy_into(still_valid, status);
        b.br(next_dispatch);

        // Invalid worker: squash it and wait for its recovery acknowledgement.
        b.switch_to(squash_bb);
        b.push(Inst::Resteer {
            core: Operand::Imm(w.core as i64),
            target: w.recovery_block,
        });
        let _ack = b.recv(w.channels.ack);
        b.br(next_dispatch);
    }

    // --- Tail: if a conflict squash left iterations unexecuted, re-enter
    // the loop from the violated boundary (the speculated registers hold it;
    // reductions carry the committed prefix). Otherwise publish predictor
    // feedback and fall through to the original post-loop code.
    b.switch_to(tail_bb);
    b.cond_br(need_resume, resume_bb, finish_bb);

    b.switch_to(resume_bb);
    b.copy_into(resumed, 1i64);
    b.copy_into(need_resume, 0i64);
    b.br(check_bb);

    b.switch_to(finish_bb);
    b.store(my_work, layout.work_addr(0), 0);
    b.store(valid_count, layout.status_base, 0);
    b.br(exit_target);

    // --- Redirect control flow:
    //  * the preheader enters through the centralized predictor step (which
    //    dispatches the workers and falls into the check block),
    //  * every back edge bumps the work counter, then runs detection,
    //  * the loop exit edge goes to the merge chain.
    {
        let term = &mut b.func_mut().block_mut(analysis.preheader).terminator;
        term.remap_blocks(|t| if t == header { central_bb } else { t });
    }
    for p in analysis.latches.iter().copied() {
        let term = &mut b.func_mut().block_mut(p).terminator;
        term.remap_blocks(|t| if t == header { bump_bb } else { t });
    }
    {
        let term = &mut b.func_mut().block_mut(exit_from).terminator;
        term.remap_blocks(|t| if t == exit_target { merge_bb } else { t });
    }

    *program.func_mut(func) = b.finish();

    MainShape {
        central: central_bb,
        dispatch: dispatch_bb,
        check: check_bb,
        bump: bump_bb,
        compare: compare_bb,
        memo: memo_bb,
        hit: hit_bb,
        merge: merge_bb,
        chain: chain_bb,
        tail: tail_bb,
        resume: resume_bb,
        finish: finish_bb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::LoopAnalysis;
    use spice_ir::verify::verify_program;

    /// Builds the paper's Figure 1(a) loop (`find_lightest_cl` from otter).
    fn otter_program() -> (Program, FuncId) {
        let mut b = FunctionBuilder::new("find_lightest");
        let c = b.param();
        let wm = b.param();
        let cm = b.param();
        let out_addr = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let new_wm = b.select(better, w, wm);
        b.copy_into(wm, new_wm);
        let new_cm = b.select(better, c, cm);
        b.copy_into(cm, new_cm);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out_addr, 0);
        b.ret(Some(Operand::Reg(wm)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        (p, f)
    }

    #[test]
    fn transform_produces_verified_program_for_two_threads() {
        let (mut p, f) = otter_program();
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads(2))
            .apply(&mut p, &analysis)
            .unwrap();
        assert_eq!(spice.workers.len(), 1);
        assert_eq!(spice.threads, 2);
        assert!(verify_program(&p).is_ok());
        // The worker function exists and is distinct from main.
        assert_ne!(spice.workers[0].func, spice.main);
        assert_eq!(p.func(spice.workers[0].func).name, "find_lightest.spice.w1");
    }

    #[test]
    fn transform_scales_to_four_threads() {
        let (mut p, f) = otter_program();
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads(4))
            .apply(&mut p, &analysis)
            .unwrap();
        assert_eq!(spice.workers.len(), 3);
        assert!(verify_program(&p).is_ok());
        // Thread ids and cores are 1..=3.
        let tids: Vec<usize> = spice.workers.iter().map(|w| w.tid).collect();
        assert_eq!(tids, vec![1, 2, 3]);
        // The sva has (t-1) rows of one word (only `c` is speculated).
        assert_eq!(spice.layout.spec_width, 1);
        assert_eq!(spice.speculated.len(), 1);
    }

    #[test]
    fn liveout_order_contains_min_reduction_and_pointer() {
        let (mut p, f) = otter_program();
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads(2))
            .apply(&mut p, &analysis)
            .unwrap();
        assert_eq!(spice.liveouts.len(), 2);
        assert!(matches!(
            spice.liveouts[0].kind,
            CombineKind::Reduction(ReductionKindSpec::Min)
        ));
        assert_eq!(spice.liveouts[0].regs.len(), 2); // wm + cm payload
        assert!(matches!(spice.liveouts[1].kind, CombineKind::Overwrite));
        assert_eq!(spice.liveout_width(), 3);
    }

    #[test]
    fn single_thread_request_is_rejected() {
        let (mut p, f) = otter_program();
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let err = SpiceTransform::new(SpiceOptions::with_threads(1))
            .apply(&mut p, &analysis)
            .unwrap_err();
        assert_eq!(
            err,
            TransformError::NotApplicable(Applicability::TooFewThreads)
        );
    }

    #[test]
    fn channels_are_distinct_across_workers() {
        let (mut p, f) = otter_program();
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads(4))
            .apply(&mut p, &analysis)
            .unwrap();
        let mut all: Vec<i64> = Vec::new();
        for w in &spice.workers {
            all.extend_from_slice(&[
                w.channels.invariant,
                w.channels.status,
                w.channels.command,
                w.channels.liveout,
                w.channels.ack,
            ]);
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "channel ids must not collide");
    }
}
