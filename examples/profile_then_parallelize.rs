//! Bring-your-own loop: profile it with the §6 value profiler to decide
//! whether its live-ins are predictable enough, then Spice-parallelize it —
//! the automation path the paper sketches at the end of §6.
//!
//! Run with: `cargo run --example profile_then_parallelize`

use spice_bench::experiments::{run_workload_sequential, run_workload_spice};
use spice_core::pipeline::predictor_options_with_estimate;
use spice_profiler::{profile_workload, AnalyzerConfig, PredictabilityBin};
use spice_workloads::{ChurnListWorkload, SpiceWorkload};

fn consider(name: &'static str, predictability: f64) {
    let mut probe = ChurnListWorkload::new(name, predictability, 250, 16, 99);
    let verdicts =
        profile_workload(&mut probe, AnalyzerConfig::default(), None).expect("profiling");
    let verdict = &verdicts[0];
    println!(
        "loop `{name}`: {:.0}% of invocations predictable -> bin {:?}",
        verdict.predictable_fraction * 100.0,
        verdict.bin
    );

    let worth_it = matches!(
        verdict.bin,
        PredictabilityBin::Good | PredictabilityBin::High
    );
    if !worth_it {
        println!("  profiler says: skip Spice for this loop (would mis-speculate too often)\n");
        return;
    }

    let mut seq = ChurnListWorkload::new(name, predictability, 250, 16, 99);
    let seq_cycles = run_workload_sequential(&mut seq).expect("sequential");
    let mut par = ChurnListWorkload::new(name, predictability, 250, 16, 99);
    let estimate = par.expected_iterations();
    let result =
        run_workload_spice(&mut par, 4, predictor_options_with_estimate(estimate)).expect("spice");
    println!(
        "  Spice (4 threads): {:.2}x speedup, mis-speculation {:.1}%\n",
        seq_cycles as f64 / result.cycles as f64,
        result.misspeculation_rate * 100.0
    );
}

fn main() {
    println!("Profiling two candidate loops before deciding to Spice them:\n");
    consider("stable_index_scan", 0.95);
    consider("rebuilt_every_time", 0.05);
}
