//! Quickstart: build the paper's Figure 1(a) loop by hand, Spice it with two
//! threads, and compare simulated cycles against single-threaded execution.
//!
//! Run with: `cargo run --example quickstart`

use spice_core::analysis::LoopAnalysis;
use spice_core::pipeline::{run_sequential, SpiceRunner};
use spice_core::transform::{SpiceOptions, SpiceTransform};
use spice_ir::builder::FunctionBuilder;
use spice_ir::{BinOp, FuncId, Operand, Program};
use spice_sim::{Machine, MachineConfig};

/// Builds `find_lightest(head) -> min weight` over a list of `(weight, next)`
/// node pairs stored in the `nodes` global.
fn build_program(capacity: i64) -> (Program, FuncId, i64) {
    let mut program = Program::new();
    let nodes = program.add_global("nodes", capacity * 2);
    let mut b = FunctionBuilder::new("find_lightest");
    let head = b.param();
    let pre = b.new_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let c = b.copy(head);
    let wm = b.copy(i64::MAX);
    b.br(pre);
    b.switch_to(pre);
    b.br(header);
    b.switch_to(header);
    let done = b.binop(BinOp::Eq, c, 0i64);
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let w = b.load(c, 0);
    let better = b.binop(BinOp::Lt, w, wm);
    let new_wm = b.select(better, w, wm);
    b.copy_into(wm, new_wm);
    let next = b.load(c, 1);
    b.copy_into(c, next);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(Operand::Reg(wm)));
    let func = program.add_func(b.finish());
    (program, func, nodes)
}

fn write_list(machine: &mut Machine, base: i64, weights: &[i64]) -> i64 {
    for (i, w) in weights.iter().enumerate() {
        let addr = base + 2 * i as i64;
        let next = if i + 1 < weights.len() { addr + 2 } else { 0 };
        machine.mem_mut().write(addr, *w).unwrap();
        machine.mem_mut().write(addr + 1, next).unwrap();
    }
    base
}

fn main() {
    let weights: Vec<i64> = (0..600).map(|i| ((i * 131) % 10_007) + 1).collect();
    let n = weights.len() as i64;

    // Sequential baseline.
    let (seq_program, seq_func, seq_nodes) = build_program(n + 4);
    let mut seq_machine = Machine::new(MachineConfig::itanium2_cmp().with_cores(1), seq_program);
    let head = write_list(&mut seq_machine, seq_nodes, &weights);
    let (seq_cycles, seq_value) =
        run_sequential(&mut seq_machine, seq_func, &[head]).expect("sequential run");

    // Spice with two threads on the same loop.
    let (mut program, func, nodes) = build_program(n + 4);
    let analysis = LoopAnalysis::analyze_outermost(&program, func).expect("analyzable loop");
    println!(
        "analysis: {} speculated live-in(s), {} reduction(s), {} invariant live-in(s)",
        analysis.speculated.len(),
        analysis.reductions.reductions.len(),
        analysis.live.invariant.len()
    );
    let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(
        2,
        weights.len() as u64,
    ))
    .apply(&mut program, &analysis)
    .expect("transformation");
    let mut machine = Machine::new(MachineConfig::itanium2_cmp().with_cores(2), program);
    let head = write_list(&mut machine, nodes, &weights);
    let mut runner = SpiceRunner::new(spice);

    // Invocation 1 trains the predictor; invocation 2 runs chunked.
    let mut last = None;
    for inv in 0..3 {
        let report = runner
            .run_invocation(&mut machine, &[head])
            .expect("invocation");
        println!(
            "invocation {inv}: {} cycles, mis-speculated = {}, return = {:?}",
            report.cycles, report.misspeculated, report.return_value
        );
        assert_eq!(report.return_value, seq_value);
        last = Some(report);
    }
    let best = last.expect("ran at least once");
    println!();
    println!("sequential:  {seq_cycles} cycles (min weight = {seq_value:?})");
    println!(
        "spice (2T):  {} cycles  ->  {:.2}x loop speedup",
        best.cycles,
        seq_cycles as f64 / best.cycles as f64
    );
}
