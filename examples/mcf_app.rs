//! The `mcf_app` scenario: a miniature network-simplex application whose
//! pivots run end-to-end as measured IR — entering-arc selection and the
//! basis-exchange relink as serial phases, the faithful
//! `refresh_potential_true` walk as the Spice-parallelized hot loop. The
//! whole-program hotness of that loop is *measured* by profiler cycle
//! attribution, not quoted from the paper, and both execution backends must
//! agree bit-for-bit with the pure-host network simplex.
//!
//! Run with: `cargo run --example mcf_app`

use spice_bench::experiments::run_workload_backend;
use spice_core::backend::BackendChoice;
use spice_core::predictor::PredictorOptions;
use spice_profiler::measure_cycle_hotness;
use spice_sim::MachineConfig;
use spice_workloads::{HostMcfApp, McfAppConfig, McfAppWorkload};

fn main() {
    let config = McfAppConfig {
        nodes: 400,
        arcs: 900,
        pivots: 12,
        seed: 7,
    };

    // Whole-program hotness, measured: one core of the Table 1 machine,
    // cycle attribution per (function, block).
    let mut wl = McfAppWorkload::new(config.clone());
    let hotness =
        measure_cycle_hotness(&mut wl, MachineConfig::itanium2_cmp()).expect("hotness run");
    println!("mcf_app whole-program profile ({} pivots):", config.pivots);
    for (name, cycles) in &hotness.per_function {
        println!(
            "  {name:<22} {cycles:>12} cycles ({:.1}%)",
            100.0 * *cycles as f64 / hotness.total_cycles as f64
        );
    }
    println!(
        "  refresh_potential_true loop: {} of {} cycles -> measured hotness {:.1}% \
         (paper's Table 2 quotes 30%)",
        hotness.loop_cycles,
        hotness.total_cycles,
        hotness.fraction() * 100.0
    );
    println!();

    // The independent host-side network simplex: the reference every
    // backend's checksums must match, pivot by pivot.
    let mut host = HostMcfApp::new(&config);
    let host_checksums: Vec<Option<i64>> = (0..config.pivots).map(|_| Some(host.pivot())).collect();

    for choice in [BackendChoice::Sim, BackendChoice::Native] {
        let mut wl = McfAppWorkload::new(config.clone());
        let summary = run_workload_backend(&mut wl, choice, 4, PredictorOptions::default())
            .expect("backend run");
        assert_eq!(
            summary.return_values, host_checksums,
            "backend {choice} diverged from the host network simplex"
        );
        println!(
            "{choice}: {} pivots, results bit-identical to the host app; \
             {} chunks committed, {} squashed ({} dependence violations recovered)",
            summary.invocations,
            summary.committed_chunks,
            summary.squashed_chunks,
            summary.dependence_violations
        );
    }
    println!();
    println!("The pivot phases execute as serial IR on the main thread, so their cycles are in");
    println!("every measured number; the refresh walk carries the real pred->potential chain,");
    println!("and the conflict-detection subsystem squashes and recovers the violations the");
    println!("speculation takes — which is why all three implementations agree exactly.");
}
