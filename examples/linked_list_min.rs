//! The otter scenario end to end: the `find_lightest_cl` loop over a mutating
//! clause list, run for many invocations under Spice with 4 threads, with
//! per-invocation statistics — the workload behind the paper's Figure 1 and
//! one of the four bars of Figure 7.
//!
//! Run with: `cargo run -p spice-bench --example linked_list_min`

use spice_bench::experiments::{run_workload_sequential, run_workload_spice};
use spice_core::pipeline::predictor_options_with_estimate;
use spice_workloads::{OtterConfig, OtterWorkload, SpiceWorkload};

fn main() {
    let config = OtterConfig {
        initial_len: 300,
        inserts_per_invocation: 3,
        invocations: 25,
        seed: 42,
    };

    let mut sequential = OtterWorkload::new(config.clone());
    let seq_cycles = run_workload_sequential(&mut sequential).expect("sequential run");

    for threads in [2usize, 4] {
        let mut wl = OtterWorkload::new(config.clone());
        let estimate = wl.expected_iterations();
        let result = run_workload_spice(&mut wl, threads, predictor_options_with_estimate(estimate))
            .expect("spice run");
        println!(
            "otter/find_lightest_cl with {threads} threads: {:.2}x speedup over 1 thread \
             ({} vs {} cycles), mis-speculation rate {:.1}%, load imbalance {:.3}",
            seq_cycles as f64 / result.cycles as f64,
            result.cycles,
            seq_cycles,
            result.misspeculation_rate * 100.0,
            result.load_imbalance,
        );
    }
    println!();
    println!(
        "The list loses its lightest clause and gains {} new clauses every invocation, yet the",
        config.inserts_per_invocation
    );
    println!("memoized chunk boundaries almost always survive — that is the paper's second insight.");
}
