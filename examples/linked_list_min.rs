//! The otter scenario end to end: the `find_lightest_cl` loop over a mutating
//! clause list, run for many invocations under Spice — on the cycle-accurate
//! timing simulator *and* on real OS threads, through the one shared
//! `ExecutionBackend` call site. The workload behind the paper's Figure 1 and
//! one of the four bars of Figure 7.
//!
//! Run with: `cargo run --example linked_list_min`

use spice_bench::experiments::{run_workload_backend, run_workload_sequential};
use spice_core::backend::BackendChoice;
use spice_core::predictor::PredictorOptions;
use spice_workloads::{OtterConfig, OtterWorkload};

fn main() {
    let config = OtterConfig {
        initial_len: 300,
        inserts_per_invocation: 3,
        invocations: 25,
        seed: 42,
    };

    let mut sequential = OtterWorkload::new(config.clone());
    let seq_cycles = run_workload_sequential(&mut sequential).expect("sequential run");

    // The same loop, the same driver, two execution substrates.
    let mut reference_results = None;
    for choice in [BackendChoice::Sim, BackendChoice::Native] {
        for threads in [2usize, 4] {
            let mut wl = OtterWorkload::new(config.clone());
            let summary =
                run_workload_backend(&mut wl, choice, threads, PredictorOptions::default())
                    .expect("backend run");
            match choice {
                BackendChoice::Sim | BackendChoice::SimTiny => println!(
                    "otter/find_lightest_cl [{choice}, {threads} threads]: {:.2}x speedup over 1 \
                     thread ({} vs {seq_cycles} cycles), mis-speculation {:.1}%, imbalance {:.3}",
                    seq_cycles as f64 / summary.total_cost as f64,
                    summary.total_cost,
                    summary.misspeculation_rate() * 100.0,
                    summary.load_imbalance(),
                ),
                BackendChoice::Native => println!(
                    "otter/find_lightest_cl [{choice}, {threads} threads]: {:.2} ms wall time on \
                     real threads, mis-speculation {:.1}%, imbalance {:.3}",
                    summary.total_cost as f64 / 1e6,
                    summary.misspeculation_rate() * 100.0,
                    summary.load_imbalance(),
                ),
            }
            // Every backend must compute identical per-invocation results.
            match &reference_results {
                None => reference_results = Some(summary.return_values.clone()),
                Some(reference) => assert_eq!(
                    reference, &summary.return_values,
                    "backend {choice} diverged from the first backend's results"
                ),
            }
        }
    }
    println!();
    println!(
        "The list loses its lightest clause and gains {} new clauses every invocation, yet the",
        config.inserts_per_invocation
    );
    println!(
        "memoized chunk boundaries almost always survive — that is the paper's second insight."
    );
    println!(
        "Both backends computed identical results for all {} invocations.",
        config.invocations
    );
}
