//! The 181.mcf scenario: `refresh_potential` walking a spanning tree and
//! storing a new potential into every node. On the simulator the speculative
//! workers buffer stores in the modeled hardware; on the native backend they
//! buffer in `SpecView`s committed by the main thread — the same protocol,
//! selected by value through the shared `ExecutionBackend` layer.
//!
//! Run with: `cargo run --example tree_update`

use spice_bench::experiments::{run_workload_backend, run_workload_sequential};
use spice_core::backend::BackendChoice;
use spice_core::predictor::PredictorOptions;
use spice_workloads::{McfConfig, McfWorkload};

fn main() {
    let config = McfConfig {
        nodes: 400,
        invocations: 20,
        cost_updates_per_invocation: 8,
        reparents_per_invocation: 1,
        seed: 7,
    };

    let mut sequential = McfWorkload::new(config.clone());
    let seq_cycles = run_workload_sequential(&mut sequential).expect("sequential run");
    println!(
        "sequential refresh_potential: {seq_cycles} cycles over {} invocations",
        config.invocations
    );

    let mut reference_results = None;
    for choice in [BackendChoice::Sim, BackendChoice::Native] {
        for threads in [2usize, 4] {
            let mut wl = McfWorkload::new(config.clone());
            let summary =
                run_workload_backend(&mut wl, choice, threads, PredictorOptions::default())
                    .expect("backend run");
            match choice {
                BackendChoice::Sim | BackendChoice::SimTiny => println!(
                    "spice [{choice}, {threads} threads]: {} cycles -> {:.2}x, mis-speculation \
                     {:.1}%, imbalance {:.3}",
                    summary.total_cost,
                    seq_cycles as f64 / summary.total_cost as f64,
                    summary.misspeculation_rate() * 100.0,
                    summary.load_imbalance(),
                ),
                BackendChoice::Native => println!(
                    "spice [{choice}, {threads} threads]: {:.2} ms wall time, mis-speculation \
                     {:.1}%, imbalance {:.3}",
                    summary.total_cost as f64 / 1e6,
                    summary.misspeculation_rate() * 100.0,
                    summary.load_imbalance(),
                ),
            }
            match &reference_results {
                None => reference_results = Some(summary.return_values.clone()),
                Some(reference) => assert_eq!(
                    reference, &summary.return_values,
                    "backend {choice} diverged from the first backend's results"
                ),
            }
        }
    }
    println!();
    println!("Every visited node is written speculatively by the workers; the stores stay in the");
    println!(
        "per-thread speculative buffers until the main thread validates the chunk and commits"
    );
    println!("them in thread order (paper §3, \"Speculative State\") — on both substrates.");
}
