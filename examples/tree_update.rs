//! The 181.mcf scenario: `refresh_potential` walking a spanning tree and
//! storing a new potential into every node, parallelized with Spice so the
//! speculative workers buffer their stores until the main thread commits
//! them in order.
//!
//! Run with: `cargo run -p spice-bench --example tree_update`

use spice_bench::experiments::{run_workload_sequential, run_workload_spice};
use spice_core::pipeline::predictor_options_with_estimate;
use spice_workloads::{McfConfig, McfWorkload, SpiceWorkload};

fn main() {
    let config = McfConfig {
        nodes: 400,
        invocations: 20,
        cost_updates_per_invocation: 8,
        reparents_per_invocation: 1,
        seed: 7,
    };

    let mut sequential = McfWorkload::new(config.clone());
    let seq_cycles = run_workload_sequential(&mut sequential).expect("sequential run");
    println!("sequential refresh_potential: {seq_cycles} cycles over {} invocations", config.invocations);

    for threads in [2usize, 4] {
        let mut wl = McfWorkload::new(config.clone());
        let estimate = wl.expected_iterations();
        let result = run_workload_spice(&mut wl, threads, predictor_options_with_estimate(estimate))
            .expect("spice run");
        println!(
            "spice with {threads} threads: {} cycles -> {:.2}x, mis-speculation {:.1}%, imbalance {:.3}",
            result.cycles,
            seq_cycles as f64 / result.cycles as f64,
            result.misspeculation_rate * 100.0,
            result.load_imbalance,
        );
    }
    println!();
    println!("Every visited node is written speculatively by the workers; the stores stay in the");
    println!("per-core speculative buffers until the main thread validates the chunk and commits");
    println!("them in thread order (paper §3, \"Speculative State\").");
}
