//! # spice — facade for the CGO 2008 Spice reproduction
//!
//! Re-exports every subsystem crate under one roof and hosts the runnable
//! examples (`cargo run --example quickstart`, `--example linked_list_min`,
//! `--example tree_update`, `--example profile_then_parallelize`).
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | SSA-lite IR, analyses, interpreter, the [`ir::exec::ExecutionBackend`] abstraction |
//! | [`core`] | the Spice transformation, value predictor, simulator backend |
//! | [`sim`] | cycle-stepped multi-core timing simulator (Table 1 machine) |
//! | [`runtime`] | native-thread chunk runtime and the native backend |
//! | [`profiler`] | loop live-in value profiler (§6 / Figure 8) |
//! | [`workloads`] | paper benchmark loops and the backend-generic driver |
//! | [`bench`] | experiment harness for every table and figure |
//! | [`farm`] | work-stealing parallel job engine under the bench sweep |
//!
//! To reproduce the whole evaluation in one parallel run (decoded programs
//! shared across jobs, artifacts streamed in deterministic order — see
//! DESIGN.md §3¾):
//!
//! ```text
//! cargo run --release -p spice-bench --bin farm        # all figures
//! cargo run --release -p spice-bench --bin farm -- --figures fig7,table2 --jobs 4
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use spice_bench as bench;
pub use spice_core as core;
pub use spice_farm as farm;
pub use spice_ir as ir;
pub use spice_profiler as profiler;
pub use spice_runtime as runtime;
pub use spice_sim as sim;
pub use spice_workloads as workloads;
